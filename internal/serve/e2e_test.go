package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/manifest"
	"gmark/internal/querygen"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

// The e2e conformance suite pins the server's core contract: every
// slice served over HTTP is byte-identical to what the batch sinks
// write for the same (use case, size, seed, shard width, encoding) —
// under concurrent requests, in arbitrary order, for all four paper
// use cases.
const (
	e2eNodes      = 260
	e2eSeed       = 5
	e2eShardNodes = 64
	e2eQueries    = 8
)

// e2eSpec is the job spec the suite registers for a use case.
func e2eSpec(uc string) *manifest.JobSpec {
	return &manifest.JobSpec{
		FormatVersion: manifest.JobSpecFormatVersion,
		Usecase:       uc,
		Nodes:         e2eNodes,
		Seed:          e2eSeed,
		ShardNodes:    e2eShardNodes,
		SpillCompress: "varint",
		Workload:      manifest.JobWorkloadSpec{Count: e2eQueries},
	}
}

// registerJob POSTs a spec and returns the job id.
func registerJob(t *testing.T, ts *httptest.Server, spec *manifest.JobSpec) string {
	t.Helper()
	body, err := manifest.EncodeJobSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: status %d: %s", resp.StatusCode, msg)
	}
	var reply struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.JobID == "" {
		t.Fatal("register: empty job_id")
	}
	return reply.JobID
}

// fetchTask is one conformance check: a URL whose body must equal
// want exactly.
type fetchTask struct {
	name string
	url  string
	want []byte
}

// batchArtifacts materializes the batch ground truth for a use case in
// tmp: text and binary partitions, a varint CSR spill, and the
// per-syntax workload directory — all from ONE generation pass, the
// way a batch run writes them.
func batchArtifacts(t *testing.T, uc string) (textDir, binDir, spillDir, wlDir string) {
	t.Helper()
	tmp := t.TempDir()
	textDir = filepath.Join(tmp, "text")
	binDir = filepath.Join(tmp, "bin")
	spillDir = filepath.Join(tmp, "spill")
	wlDir = filepath.Join(tmp, "wl")

	gcfg, err := usecases.ByName(uc, e2eNodes)
	if err != nil {
		t.Fatal(err)
	}
	textSink, err := graphgen.NewPartitionedSink(textDir, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	binSink, err := graphgen.NewBinaryPartitionedSink(binDir, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	spillSink, err := graphgen.NewCSRSpillSink(spillDir, gcfg, e2eShardNodes)
	if err != nil {
		t.Fatal(err)
	}
	opt := graphgen.Options{Seed: e2eSeed}
	if _, err := graphgen.Emit(gcfg, opt, graphgen.MultiEdgeSink(textSink, binSink, spillSink)); err != nil {
		t.Fatal(err)
	}

	wcfg, err := usecases.Workload("con", gcfg, e2eSeed)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.Count = e2eQueries
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	wlSink, err := querygen.NewSyntaxDirSink(wlDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Emit(querygen.Options{}, wlSink); err != nil {
		t.Fatal(err)
	}
	return textDir, binDir, spillDir, wlDir
}

// conformanceTasks builds the full fetch list for a registered job
// from its batch artifacts.
func conformanceTasks(t *testing.T, base, jobID, textDir, binDir, spillDir, wlDir string) []fetchTask {
	t.Helper()
	var tasks []fetchTask
	jobURL := base + "/v1/jobs/" + jobID

	// Whole-graph partition files, text and binary.
	for _, dir := range []struct {
		dir, enc string
	}{{textDir, "text"}, {binDir, "binary"}} {
		idx, err := graphgen.ReadPartitionIndex(dir.dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range idx.Predicates {
			want, err := os.ReadFile(filepath.Join(dir.dir, p.File))
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, fetchTask{
				name: fmt.Sprintf("%s/%s/all", dir.enc, p.Name),
				url:  jobURL + "/graph/" + url.PathEscape(p.Name) + "/all?enc=" + dir.enc,
				want: want,
			})
		}
	}

	// Every CSR shard, both directions.
	spill, err := graphgen.OpenCSRSpill(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range spill.Manifest.Predicates {
		for _, d := range []struct {
			tag    string
			shards []graphgen.CSRShard
		}{{"f", p.Fwd}, {"b", p.Bwd}} {
			for r, sh := range d.shards {
				want, err := os.ReadFile(filepath.Join(spillDir, sh.File))
				if err != nil {
					t.Fatal(err)
				}
				tasks = append(tasks, fetchTask{
					name: fmt.Sprintf("csr/%s/%s/%d", p.Name, d.tag, r),
					url:  fmt.Sprintf("%s/graph/%s/%d?dir=%s", jobURL, url.PathEscape(p.Name), r, d.tag),
					want: want,
				})
			}
		}
	}

	// Workload windows: each query alone, in every syntax, plus the
	// full window as the concatenation of the per-query files.
	for _, syn := range translate.Syntaxes {
		var all []byte
		for i := 0; i < e2eQueries; i++ {
			want, err := os.ReadFile(filepath.Join(wlDir, fmt.Sprintf(manifest.QueryFilePattern, i, syn)))
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, fetchTask{
				name: fmt.Sprintf("workload/%s/%d", syn, i),
				url:  fmt.Sprintf("%s/workload?from=%d&to=%d&syntax=%s", jobURL, i, i+1, syn),
				want: want,
			})
			all = append(all, want...)
		}
		tasks = append(tasks, fetchTask{
			name: fmt.Sprintf("workload/%s/full", syn),
			url:  fmt.Sprintf("%s/workload?from=0&to=%d&syntax=%s", jobURL, e2eQueries, syn),
			want: all,
		})
	}
	return tasks
}

// runTasks fetches every task over workers goroutines and compares
// bodies byte for byte.
func runTasks(t *testing.T, tasks []fetchTask, workers int) {
	t.Helper()
	ch := make(chan fetchTask)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := range ch {
				resp, err := http.Get(task.url)
				if err != nil {
					t.Errorf("%s: %v", task.name, err)
					continue
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: reading body: %v", task.name, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d: %s", task.name, resp.StatusCode, got)
					continue
				}
				if !bytes.Equal(got, task.want) {
					t.Errorf("%s: served %d bytes differ from batch %d bytes", task.name, len(got), len(task.want))
				}
			}
		}()
	}
	for _, task := range tasks {
		ch <- task
	}
	close(ch)
	wg.Wait()
}

// TestServeConformance is the tentpole contract test: for all four
// paper use cases, every graph shard and workload window served over
// HTTP — fetched concurrently, in arbitrary order — is byte-identical
// to the corresponding batch sink output.
func TestServeConformance(t *testing.T) {
	srv := New(Options{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, uc := range usecases.Names {
		t.Run(uc, func(t *testing.T) {
			textDir, binDir, spillDir, wlDir := batchArtifacts(t, uc)
			jobID := registerJob(t, ts, e2eSpec(uc))
			tasks := conformanceTasks(t, ts.URL, jobID, textDir, binDir, spillDir, wlDir)
			if len(tasks) == 0 {
				t.Fatal("no conformance tasks built")
			}
			runTasks(t, tasks, 8)
		})
	}

	stats := srv.Stats()
	if stats.Jobs != len(usecases.Names) {
		t.Errorf("stats: %d jobs, want %d", stats.Jobs, len(usecases.Names))
	}
	if stats.SlicesServed == 0 || stats.BytesServed == 0 {
		t.Errorf("stats: no slices recorded: %+v", stats)
	}
}

// TestServeCompressionOverrides checks the compress= override: a CSR
// shard requested as none, deflate, or raw matches the batch spill
// written with that setting, independent of the job's default.
func TestServeCompressionOverrides(t *testing.T) {
	srv := New(Options{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	jobID := registerJob(t, ts, e2eSpec("bib"))

	gcfg, err := usecases.ByName("bib", e2eNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []graphgen.SpillCompression{
		graphgen.SpillCompressNone, graphgen.SpillCompressDeflate, graphgen.SpillCompressRaw,
	} {
		dir := filepath.Join(t.TempDir(), comp.String())
		sink, err := graphgen.NewCSRSpillSinkWith(dir, gcfg, e2eShardNodes, comp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := graphgen.Emit(gcfg, graphgen.Options{Seed: e2eSeed}, sink); err != nil {
			t.Fatal(err)
		}
		spill, err := graphgen.OpenCSRSpill(dir)
		if err != nil {
			t.Fatal(err)
		}
		var tasks []fetchTask
		for _, p := range spill.Manifest.Predicates {
			for r, sh := range p.Fwd {
				want, err := os.ReadFile(filepath.Join(dir, sh.File))
				if err != nil {
					t.Fatal(err)
				}
				tasks = append(tasks, fetchTask{
					name: fmt.Sprintf("csr/%s/%s/%d", comp, p.Name, r),
					url: fmt.Sprintf("%s/v1/jobs/%s/graph/%s/%d?compress=%s",
						ts.URL, jobID, url.PathEscape(p.Name), r, comp),
					want: want,
				})
			}
		}
		runTasks(t, tasks, 4)
	}
}

// TestServeReassembledCounts closes the loop on evaluation: a graph
// rebuilt purely from served text slices gives the same |Q(G)| as the
// in-memory generated graph, for every workload query.
func TestServeReassembledCounts(t *testing.T) {
	srv := New(Options{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, uc := range []string{"bib", "sp"} {
		t.Run(uc, func(t *testing.T) {
			jobID := registerJob(t, ts, e2eSpec(uc))
			gcfg, err := usecases.ByName(uc, e2eNodes)
			if err != nil {
				t.Fatal(err)
			}
			want, err := graphgen.Generate(gcfg, graphgen.Options{Seed: e2eSeed})
			if err != nil {
				t.Fatal(err)
			}

			typeNames, typeCounts, predNames := graphgen.Layout(gcfg)
			got, err := graph.New(typeNames, typeCounts, predNames)
			if err != nil {
				t.Fatal(err)
			}
			for pi, pred := range predNames {
				resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/graph/%s/all?enc=text",
					ts.URL, jobID, url.PathEscape(pred)))
				if err != nil {
					t.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: status %d err %v", pred, resp.StatusCode, err)
				}
				srcs, dsts := parseTextEdges(t, body)
				if err := got.AddEdgeBatch(graph.PredID(pi), srcs, dsts); err != nil {
					t.Fatal(err)
				}
			}
			got.Freeze()

			wcfg, err := usecases.Workload("con", gcfg, e2eSeed)
			if err != nil {
				t.Fatal(err)
			}
			wcfg.Count = e2eQueries
			gen, err := querygen.New(wcfg)
			if err != nil {
				t.Fatal(err)
			}
			queries, err := gen.Generate()
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				wantN, err := eval.Count(want, q, eval.Budget{})
				if err != nil {
					t.Fatal(err)
				}
				gotN, err := eval.Count(got, q, eval.Budget{})
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN {
					t.Errorf("query %d: count %d over reassembled slices, %d in memory", i, gotN, wantN)
				}
			}
		})
	}
}

// TestServeTextRangeSlices checks the text range view: the union of
// all per-range text slices is exactly the whole-graph edge multiset,
// and each line's source node lies inside its range.
func TestServeTextRangeSlices(t *testing.T) {
	srv := New(Options{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	jobID := registerJob(t, ts, e2eSpec("lsn"))

	var man JobManifest
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&man)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if man.Ranges < 2 {
		t.Fatalf("fixture too small: %d ranges, want >= 2", man.Ranges)
	}

	pred := man.Predicates[0].Name
	get := func(rng string) []byte {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/graph/%s/%s?enc=text",
			ts.URL, jobID, url.PathEscape(pred), rng))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("range %s: status %d err %v", rng, resp.StatusCode, err)
		}
		return body
	}

	var union []string
	for r := 0; r < man.Ranges; r++ {
		body := get(fmt.Sprint(r))
		srcs, _ := parseTextEdges(t, body)
		lo, hi := int32(r*man.ShardNodes), int32((r+1)*man.ShardNodes)
		for _, s := range srcs {
			if s < lo || s >= hi {
				t.Fatalf("range %d: source %d outside [%d, %d)", r, s, lo, hi)
			}
		}
		union = append(union, nonEmptyLines(string(body))...)
	}
	all := nonEmptyLines(string(get("all")))
	sort.Strings(union)
	sort.Strings(all)
	if len(union) != len(all) {
		t.Fatalf("ranges hold %d edges, whole graph %d", len(union), len(all))
	}
	for i := range all {
		if union[i] != all[i] {
			t.Fatalf("edge multiset differs at %d: %q vs %q", i, union[i], all[i])
		}
	}
}

// TestServeCacheAndErrors covers the cache header contract and the
// error mapping of the read endpoints.
func TestServeCacheAndErrors(t *testing.T) {
	srv := New(Options{Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	jobID := registerJob(t, ts, e2eSpec("wd"))

	var man JobManifest
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&man)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pred := man.Predicates[0].Name

	sliceURL := fmt.Sprintf("%s/v1/jobs/%s/graph/%s/0", ts.URL, jobID, url.PathEscape(pred))
	first, firstHdr := mustGet(t, sliceURL)
	second, secondHdr := mustGet(t, sliceURL)
	if !bytes.Equal(first, second) {
		t.Error("same slice URL served different bytes")
	}
	if firstHdr.Get("X-Gmark-Cache") != "miss" || secondHdr.Get("X-Gmark-Cache") != "hit" {
		t.Errorf("cache headers: first %q, second %q",
			firstHdr.Get("X-Gmark-Cache"), secondHdr.Get("X-Gmark-Cache"))
	}

	// Registering the identical spec again is idempotent.
	if again := registerJob(t, ts, e2eSpec("wd")); again != jobID {
		t.Errorf("re-registration returned %s, want %s", again, jobID)
	}

	for _, tc := range []struct {
		name string
		url  string
		code int
	}{
		{"unknown job", ts.URL + "/v1/jobs/nope/manifest", http.StatusNotFound},
		{"unknown predicate", fmt.Sprintf("%s/v1/jobs/%s/graph/nope/0", ts.URL, jobID), http.StatusNotFound},
		{"range out of bounds", fmt.Sprintf("%s/v1/jobs/%s/graph/%s/9999", ts.URL, jobID, url.PathEscape(pred)), http.StatusNotFound},
		{"bad range", fmt.Sprintf("%s/v1/jobs/%s/graph/%s/xyz", ts.URL, jobID, url.PathEscape(pred)), http.StatusBadRequest},
		{"csr all", fmt.Sprintf("%s/v1/jobs/%s/graph/%s/all", ts.URL, jobID, url.PathEscape(pred)), http.StatusBadRequest},
		{"binary range", fmt.Sprintf("%s/v1/jobs/%s/graph/%s/0?enc=binary", ts.URL, jobID, url.PathEscape(pred)), http.StatusBadRequest},
		{"bad encoding", fmt.Sprintf("%s/v1/jobs/%s/graph/%s/0?enc=yaml", ts.URL, jobID, url.PathEscape(pred)), http.StatusBadRequest},
		{"bad direction", fmt.Sprintf("%s/v1/jobs/%s/graph/%s/0?dir=x", ts.URL, jobID, url.PathEscape(pred)), http.StatusBadRequest},
		{"window too wide", fmt.Sprintf("%s/v1/jobs/%s/workload?from=0&to=999", ts.URL, jobID), http.StatusNotFound},
		{"window inverted", fmt.Sprintf("%s/v1/jobs/%s/workload?from=3&to=1", ts.URL, jobID), http.StatusNotFound},
		{"bad syntax", fmt.Sprintf("%s/v1/jobs/%s/workload?syntax=cobol", ts.URL, jobID), http.StatusBadRequest},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}

	// healthz and statsz respond.
	body, _ := mustGet(t, ts.URL+"/healthz")
	if !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %s", body)
	}
	var stats Stats
	body, _ = mustGet(t, ts.URL+"/statsz")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits == 0 || stats.Cache.Misses == 0 {
		t.Errorf("statsz cache counters not moving: %+v", stats.Cache)
	}
}

// mustGet fetches a URL expecting 200 and returns body and headers.
func mustGet(t *testing.T, u string) ([]byte, http.Header) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", u, resp.StatusCode, body)
	}
	return body, resp.Header
}

// parseTextEdges parses "src dst" lines.
func parseTextEdges(t *testing.T, body []byte) (srcs, dsts []graph.NodeID) {
	t.Helper()
	for _, line := range nonEmptyLines(string(body)) {
		var s, d int32
		if _, err := fmt.Sscanf(line, "%d %d", &s, &d); err != nil {
			t.Fatalf("bad edge line %q: %v", line, err)
		}
		srcs = append(srcs, s)
		dsts = append(dsts, d)
	}
	return srcs, dsts
}

// nonEmptyLines splits on newlines dropping the trailing empty line.
func nonEmptyLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}
