package serve

import (
	"fmt"
	"io"
	"net/http"

	"gmark/internal/graphgen"
	"gmark/internal/translate"
)

// httpError is a client-visible request failure: a status code in the
// 4xx range and a one-line message. Slice computation itself cannot
// fail on a validated job, so handlers map every parse/lookup problem
// to an httpError up front and treat later errors as 500s.
type httpError struct {
	code int
	msg  string
}

// writeError renders an httpError as a JSON body.
func writeError(w http.ResponseWriter, e *httpError) {
	writeJSON(w, e.code, map[string]string{"error": e.msg})
}

// maxSpecBytes bounds a POSTed job spec. Specs are a handful of
// scalar fields; a megabyte is already absurdly generous.
const maxSpecBytes = 1 << 20

// handleRegister implements POST /v1/jobs.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("reading job spec: %v", err)})
		return
	}
	j, created, herr := s.register(body)
	if herr != nil {
		writeError(w, herr)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{"job_id": j.id, "created": created})
}

// handleManifest implements GET /v1/jobs/{id}/manifest.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, &httpError{http.StatusNotFound, "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, manifestOf(j))
}

// handleGraphSlice implements
// GET /v1/jobs/{id}/graph/{predicate}/{range}?enc=&dir=&compress=.
func (s *Server) handleGraphSlice(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, &httpError{http.StatusNotFound, "unknown job"})
		return
	}
	g, herr := parseGraphSlice(j, r.PathValue("predicate"), r.PathValue("range"), r.URL.Query())
	if herr != nil {
		writeError(w, herr)
		return
	}
	key := sliceKey{jobID: j.id, kind: "graph", pred: g.pred, rng: g.rng, enc: g.enc}
	if g.enc == "csr" {
		key.dir = g.dir
		key.enc = g.comp.String()
	}
	data, cached, err := s.cache.get(key, func() ([]byte, error) {
		return s.computeGraphSlice(j, g)
	})
	if err != nil {
		writeError(w, &httpError{http.StatusInternalServerError, err.Error()})
		return
	}
	ct := "application/octet-stream"
	if g.enc == "text" {
		ct = "text/plain; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Gmark-Expected-Edges",
		fmt.Sprint(graphgen.ExpectedPredicateEdges(j.gcfg, g.pred)))
	setCacheHeader(w, cached)
	s.serveSlice(w, data)
}

// handleWorkload implements
// GET /v1/jobs/{id}/workload?from=&to=&syntax=.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, &httpError{http.StatusNotFound, "unknown job"})
		return
	}
	q := r.URL.Query()
	from, to := 0, j.spec.Workload.Count
	var err error
	if v := first(q, "from"); v != "" {
		if from, err = parseUint(v); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad from: %v", err)})
			return
		}
	}
	if v := first(q, "to"); v != "" {
		if to, err = parseUint(v); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("bad to: %v", err)})
			return
		}
	}
	if from > to || to > j.spec.Workload.Count {
		writeError(w, &httpError{http.StatusNotFound,
			fmt.Sprintf("window [%d, %d) outside the job's %d queries", from, to, j.spec.Workload.Count)})
		return
	}
	syn := translate.SPARQL
	if len(j.syntaxes) > 0 {
		syn = j.syntaxes[0]
	}
	if v := first(q, "syntax"); v != "" {
		if syn, err = translate.ParseSyntax(v); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
	}
	served := false
	for _, s := range j.syntaxes {
		if s == syn {
			served = true
			break
		}
	}
	if !served {
		writeError(w, &httpError{http.StatusBadRequest,
			fmt.Sprintf("syntax %q not among the job's syntaxes", syn)})
		return
	}
	key := sliceKey{jobID: j.id, kind: "workload", from: from, to: to, syn: string(syn)}
	data, cached, err := s.cache.get(key, func() ([]byte, error) {
		return s.computeWorkloadSlice(j, from, to, syn)
	})
	if err != nil {
		writeError(w, &httpError{http.StatusInternalServerError, err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Gmark-Queries", fmt.Sprint(to-from))
	setCacheHeader(w, cached)
	s.serveSlice(w, data)
}

// setCacheHeader records whether the payload came from the slice
// cache; tests and monitoring read it, clients may ignore it.
func setCacheHeader(w http.ResponseWriter, cached bool) {
	if cached {
		w.Header().Set("X-Gmark-Cache", "hit")
	} else {
		w.Header().Set("X-Gmark-Cache", "miss")
	}
}

// serveSlice writes a slice payload and bumps the served counters.
func (s *Server) serveSlice(w http.ResponseWriter, data []byte) {
	s.slicesServed.Add(1)
	s.bytesServed.Add(int64(len(data)))
	w.Write(data)
}
