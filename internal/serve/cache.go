package serve

import (
	"container/list"
	"sync"
)

// sliceKey identifies one cached slice. It is a comparable value: two
// requests for the same slice — whatever their URL spelling — collapse
// onto one key, one computation, one cache entry.
type sliceKey struct {
	jobID string
	kind  string // "graph" or "workload"
	pred  string
	dir   byte   // 'f' or 'b' for CSR slices
	rng   int    // node-range index; -1 means the whole graph
	enc   string // "text", "binary", or a SpillCompression name
	from  int    // workload window start
	to    int    // workload window end
	syn   string // workload syntax
}

// sliceEntry is one resident cache entry.
type sliceEntry struct {
	key  sliceKey
	data []byte
}

// inflightSlice coalesces concurrent loads of one key: the first
// requester computes, the rest wait on done and share the result.
type inflightSlice struct {
	done chan struct{}
	data []byte
	err  error
}

// CacheStats is the cache half of the /statsz payload.
type CacheStats struct {
	// Hits counts lookups served from a resident entry or a coalesced
	// in-flight computation.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to compute the slice.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to stay under the byte budget.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of resident slices.
	Entries int `json:"entries"`
	// Bytes is the current resident payload size.
	Bytes int64 `json:"bytes"`
}

// sliceCache is a byte-budgeted LRU of computed slices with
// single-flight load coalescing. All state sits behind one mutex;
// loads run outside it.
type sliceCache struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
	ll        *list.List // front = most recently used
	entries   map[sliceKey]*list.Element
	inflight  map[sliceKey]*inflightSlice
}

// newSliceCache returns an empty cache with the given byte budget.
func newSliceCache(budget int64) *sliceCache {
	c := &sliceCache{
		budget:   budget,
		ll:       list.New(),
		entries:  make(map[sliceKey]*list.Element),
		inflight: make(map[sliceKey]*inflightSlice),
	}
	return c
}

// get returns the slice for key, computing it with load on a miss.
// Concurrent gets of the same key run load once. The returned bool
// reports whether the bytes came from the cache (or a coalesced
// flight) rather than a fresh computation by this caller. Callers must
// not mutate the returned bytes.
func (c *sliceCache) get(key sliceKey, load func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		data := el.Value.(*sliceEntry).data
		c.mu.Unlock()
		return data, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.data, true, fl.err
	}
	fl := &inflightSlice{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.data, fl.err = load()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insert(key, fl.data)
	}
	c.mu.Unlock()
	return fl.data, false, fl.err
}

// insert adds an entry and evicts from the cold end until the budget
// holds. A slice larger than the whole budget is served but never
// cached. Caller holds the lock.
func (c *sliceCache) insert(key sliceKey, data []byte) {
	if int64(len(data)) > c.budget {
		return
	}
	if _, ok := c.entries[key]; ok {
		return // a racing flight already populated it
	}
	c.entries[key] = c.ll.PushFront(&sliceEntry{key: key, data: data})
	c.bytes += int64(len(data))
	for c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*sliceEntry)
		c.ll.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.data))
		c.evictions++
	}
}

// stats returns a snapshot of the cache counters.
func (c *sliceCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}
