package graphstat

import (
	"math"
	"math/rand"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/graphgen"
	"gmark/internal/schema"
	"gmark/internal/usecases"
)

func TestFitZipfExponentOnSyntheticData(t *testing.T) {
	// Draw from a known zipf and recover an exponent in the right
	// region; the MLE with kmin=1 is approximate but must be monotone.
	r := rand.New(rand.NewSource(1))
	draw := func(s float64) []int {
		d := dist.Distribution{Kind: dist.Zipfian, S: s, N: 1000}
		sampler, err := d.NewSampler()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 20000)
		for i := range out {
			out[i] = sampler.Sample(r)
		}
		return out
	}
	s15 := FitZipfExponent(draw(1.5))
	s25 := FitZipfExponent(draw(2.5))
	if s15 >= s25 {
		t.Errorf("exponent estimates not monotone: s(1.5)=%.2f >= s(2.5)=%.2f", s15, s25)
	}
	if s25 < 1.5 || s25 > 4 {
		t.Errorf("s(2.5) estimate = %.2f out of plausible range", s25)
	}
}

func TestFitZipfExponentDegenerate(t *testing.T) {
	if FitZipfExponent(nil) != 0 {
		t.Error("empty input")
	}
	if FitZipfExponent([]int{0, 0}) != 0 {
		t.Error("all-zero input")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram([]int{3, 1, 1, 2, 3, 3})
	want := [][2]int{{1, 2}, {2, 1}, {3, 3}}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestCheckOnAllUseCases(t *testing.T) {
	for _, name := range usecases.Names {
		cfg, err := usecases.ByName(name, 4000)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		reports := Check(g, cfg, 0.25)
		if len(reports) == 0 {
			t.Fatalf("%s: no reports", name)
		}
		sum := Summarize(reports)
		if sum.Passed != sum.Total {
			for _, f := range sum.Failures {
				t.Errorf("%s: %s", name, f)
			}
		}
	}
}

func TestCheckDetectsShapeViolation(t *testing.T) {
	// A graph generated with uniform out-degrees, checked against a
	// deliberately wrong configuration claiming a smaller uniform max,
	// must fail.
	gen := &schema.GraphConfig{
		Nodes: 2000,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "a", Occurrence: schema.Proportion(0.5)},
				{Name: "b", Occurrence: schema.Proportion(0.5)},
			},
			Predicates: []schema.Predicate{{Name: "p", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "a", Target: "b", Predicate: "p",
					In: dist.Unspecified(), Out: dist.NewUniform(3, 5)},
			},
		},
	}
	g, err := graphgen.Generate(gen, graphgen.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lying := *gen
	lying.Schema.Constraints = []schema.EdgeConstraint{
		{Source: "a", Target: "b", Predicate: "p",
			In: dist.Unspecified(), Out: dist.NewUniform(0, 2)},
	}
	reports := Check(g, &lying, 0.1)
	sum := Summarize(reports)
	if len(sum.Failures) == 0 {
		t.Error("wrong uniform bound should be detected")
	}
}

func TestCheckGaussianMean(t *testing.T) {
	cfg := &schema.GraphConfig{
		Nodes: 4000,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "a", Occurrence: schema.Proportion(0.5)},
				{Name: "b", Occurrence: schema.Proportion(0.5)},
			},
			Predicates: []schema.Predicate{{Name: "p", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "a", Target: "b", Predicate: "p",
					In: dist.NewGaussian(4, 1), Out: dist.NewGaussian(4, 1)},
			},
		},
	}
	g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reports := Check(g, cfg, 0.15)
	for _, r := range reports {
		if !r.OK {
			t.Errorf("%s", r)
		}
		if math.Abs(r.ObservedMean-4) > 0.5 {
			t.Errorf("observed mean %.2f far from mu=4", r.ObservedMean)
		}
	}
}

func TestCheckZipfHeavyTail(t *testing.T) {
	cfg := &schema.GraphConfig{
		Nodes: 4000,
		Schema: schema.Schema{
			Types:      []schema.NodeType{{Name: "u", Occurrence: schema.Proportion(1)}},
			Predicates: []schema.Predicate{{Name: "knows", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "u", Target: "u", Predicate: "knows",
					In: dist.NewZipfian(1.8), Out: dist.NewZipfian(1.8)},
			},
		},
	}
	g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Check(g, cfg, 0.15) {
		if !r.OK {
			t.Errorf("%s", r)
		}
		if r.HeavyTail < 3 {
			t.Errorf("zipf side tail ratio %.1f too light", r.HeavyTail)
		}
	}
}
