// Package graphstat verifies generated instances against their
// configuration: for every eta constraint it compares the observed in-
// and out-degree statistics with the configured distributions —
// supporting the paper's claim that the heuristic generator preserves
// the distribution *types* even when exact parameters are trimmed
// (Section 4).
package graphstat

import (
	"fmt"
	"math"
	"sort"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

// Report is the verification result for one side of one constraint.
type Report struct {
	Source, Target, Predicate string
	Side                      string // "out" or "in"
	Configured                dist.Distribution

	NodeCount    int
	EdgeCount    int
	ObservedMean float64
	ObservedMax  int
	// ExpectedMean is the per-node mean after the min-side trimming of
	// Fig. 5: generated edges / nodes on this side.
	ExpectedMean float64
	// ZipfExponent is the discrete power-law MLE exponent of the
	// non-zero degrees (meaningful for Zipfian sides).
	ZipfExponent float64
	// HeavyTail is max/mean over non-zero degrees: near 1 for uniform
	// degrees, large for power laws.
	HeavyTail float64

	OK   bool
	Note string
}

func (r Report) String() string {
	return fmt.Sprintf("eta(%s,%s,%s) %s %v: mean=%.2f (expect %.2f) max=%d tail=%.1f ok=%v %s",
		r.Source, r.Target, r.Predicate, r.Side, r.Configured,
		r.ObservedMean, r.ExpectedMean, r.ObservedMax, r.HeavyTail, r.OK, r.Note)
}

// Check verifies every specified distribution side of every constraint
// of cfg against the generated graph g. tolerance is the allowed
// relative deviation of the observed mean from the trimmed expectation
// (e.g. 0.15).
func Check(g *graph.Graph, cfg *schema.GraphConfig, tolerance float64) []Report {
	var reports []Report
	for _, c := range cfg.Schema.Constraints {
		srcType := g.TypeIndex(c.Source)
		trgType := g.TypeIndex(c.Target)
		pred := g.PredIndex(c.Predicate)
		if srcType < 0 || trgType < 0 || pred < 0 {
			continue
		}
		edges := g.PredEdgeCount(pred)
		if c.Out.Specified() {
			stats := g.OutDegreeStats(srcType, pred)
			reports = append(reports, sideReport(c, "out", c.Out, stats, edges, tolerance))
		}
		if c.In.Specified() {
			stats := g.InDegreeStats(trgType, pred)
			reports = append(reports, sideReport(c, "in", c.In, stats, edges, tolerance))
		}
	}
	return reports
}

func sideReport(c schema.EdgeConstraint, side string, d dist.Distribution, stats graph.DegreeStats, edges int, tolerance float64) Report {
	r := Report{
		Source: c.Source, Target: c.Target, Predicate: c.Predicate,
		Side:         side,
		Configured:   d,
		NodeCount:    stats.Count,
		EdgeCount:    stats.EdgeSum,
		ObservedMean: stats.Mean,
		ObservedMax:  stats.Max,
		ZipfExponent: FitZipfExponent(stats.Degrees),
		HeavyTail:    heavyTail(stats),
	}
	if stats.Count > 0 {
		// The generator emits min(|vsrc|,|vtrg|) edges for the whole
		// predicate; this side's share is the predicate's edges over
		// its node count. (Multiple constraints can share a predicate;
		// stats.EdgeSum is already restricted to this type pair.)
		r.ExpectedMean = float64(stats.EdgeSum) / float64(stats.Count)
	}

	switch d.Kind {
	case dist.Uniform:
		// Degrees must respect the configured bounds unless trimming
		// removed edges (observed mean below the configured minimum
		// signals trimming, which is legal).
		if stats.Max > d.Max {
			r.Note = fmt.Sprintf("max degree %d exceeds uniform max %d", stats.Max, d.Max)
			return r
		}
		r.OK = true
	case dist.Gaussian:
		// The shape claim: observed mean near the configured mu, or
		// below it when this side was trimmed.
		if d.Mu > 0 && stats.Mean > d.Mu*(1+tolerance) {
			r.Note = fmt.Sprintf("mean %.2f above gaussian mu %.2f", stats.Mean, d.Mu)
			return r
		}
		r.OK = true
	case dist.Zipfian:
		// The shape claim: a heavy tail survives trimming.
		if stats.EdgeSum >= 100 && r.HeavyTail < 3 {
			r.Note = fmt.Sprintf("tail ratio %.1f too light for a zipfian side", r.HeavyTail)
			return r
		}
		r.OK = true
	default:
		r.OK = true
	}
	return r
}

func heavyTail(stats graph.DegreeStats) float64 {
	if stats.NonZero == 0 {
		return 0
	}
	meanNonZero := float64(stats.EdgeSum) / float64(stats.NonZero)
	if meanNonZero == 0 {
		return 0
	}
	return float64(stats.Max) / meanNonZero
}

// FitZipfExponent estimates the discrete power-law exponent of the
// non-zero degrees with the Clauset-Shalizi-Newman MLE
// (s = 1 + n / sum ln(k_i / (kmin - 1/2)), kmin = 1). It returns 0
// when there are no positive degrees.
func FitZipfExponent(degrees []int) float64 {
	n := 0
	sum := 0.0
	for _, k := range degrees {
		if k <= 0 {
			continue
		}
		n++
		sum += math.Log(float64(k) / 0.5)
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// DegreeHistogram returns degree -> count over the given degrees,
// sorted by degree, for diagnostics and plots.
func DegreeHistogram(degrees []int) [][2]int {
	m := map[int]int{}
	for _, d := range degrees {
		m[d]++
	}
	out := make([][2]int, 0, len(m))
	for d, c := range m {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Summary aggregates a Check run.
type Summary struct {
	Total, Passed int
	Failures      []Report
}

// Summarize folds reports into a Summary.
func Summarize(reports []Report) Summary {
	s := Summary{Total: len(reports)}
	for _, r := range reports {
		if r.OK {
			s.Passed++
		} else {
			s.Failures = append(s.Failures, r)
		}
	}
	return s
}
