package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExact(t *testing.T) {
	// y = 2 + 3x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{2, 5, 8, 11, 14}
	a, b := LinearRegression(xs, ys)
	if math.Abs(a-2) > 1e-12 || math.Abs(b-3) > 1e-12 {
		t.Errorf("fit = (%g, %g), want (2, 3)", a, b)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	if a, b := LinearRegression([]float64{1}, []float64{2}); !math.IsNaN(a) || !math.IsNaN(b) {
		t.Error("single point should be NaN")
	}
	if a, b := LinearRegression([]float64{1, 2}, []float64{2}); !math.IsNaN(a) || !math.IsNaN(b) {
		t.Error("mismatched lengths should be NaN")
	}
	// All x equal: vertical line.
	if _, b := LinearRegression([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(b) {
		t.Error("vertical line should be NaN")
	}
}

func TestAlphaFromCountsRecovers(t *testing.T) {
	sizes := []int{1000, 2000, 4000, 8000, 16000}
	for _, alpha := range []float64{0, 0.5, 1, 1.7, 2} {
		beta := 0.03
		counts := make([]int64, len(sizes))
		for i, n := range sizes {
			counts[i] = int64(beta * math.Pow(float64(n), alpha))
		}
		got := AlphaFromCounts(sizes, counts)
		// Small alpha with tiny beta truncates to zero counts; the
		// clamp keeps the estimate near zero.
		tol := 0.1
		if alpha < 0.5 {
			tol = 0.3
		}
		if math.Abs(got-alpha) > tol {
			t.Errorf("alpha %g recovered as %g", alpha, got)
		}
	}
}

func TestAlphaFromCountsZeroClamped(t *testing.T) {
	got := AlphaFromCounts([]int{100, 200, 400}, []int64{0, 0, 0})
	if got != 0 {
		t.Errorf("all-zero counts should fit alpha 0, got %g", got)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, s := MeanStd(xs)
	if m != 5 {
		t.Errorf("mean = %g", m)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s-2.138) > 0.01 {
		t.Errorf("std = %g", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-point std should be 0")
	}
}

func TestTrimmedMean(t *testing.T) {
	// Drops 1 and 100, averages 10, 20, 30.
	xs := []float64{100, 10, 20, 1, 30}
	if got := TrimmedMean(xs); got != 20 {
		t.Errorf("trimmed mean = %g", got)
	}
	// Fewer than 3: plain mean.
	if got := TrimmedMean([]float64{4, 8}); got != 6 {
		t.Errorf("short trimmed mean = %g", got)
	}
}

func TestDiscardFarthest(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 1000}
	got := DiscardFarthest(xs, 1)
	if math.Abs(got-10) > 0.01 {
		t.Errorf("discard-1 mean = %g", got)
	}
	// k=0 or k >= len: plain mean.
	if DiscardFarthest(xs, 0) != Mean(xs) {
		t.Error("k=0 should be plain mean")
	}
	if DiscardFarthest(xs, 5) != Mean(xs) {
		t.Error("k>=len should be plain mean")
	}
}

// Property: the regression residual gradient is zero — verified by
// checking the fit is invariant when recovering from generated lines.
func TestQuickRegressionRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(aRaw, bRaw int8) bool {
		a := float64(aRaw) / 4
		b := float64(bRaw) / 4
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()*0.01
			ys[i] = a + b*xs[i]
		}
		ga, gb := LinearRegression(xs, ys)
		return math.Abs(ga-a) < 0.05 && math.Abs(gb-b) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TrimmedMean is bounded by the min and max of the input.
func TestQuickTrimmedMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := TrimmedMean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
