// Package stats provides the statistical helpers used by the
// experiment harness: the log-log linear regression that estimates the
// selectivity exponent alpha in |Q(G)| = beta * |G|^alpha
// (paper, Section 6.2), and the outlier-discarding averaging protocol
// of Section 7.1.
package stats

import (
	"math"
	"sort"
)

// LinearRegression fits y = a + b*x by least squares and returns the
// intercept a and slope b. It requires at least two points; with fewer
// it returns (NaN, NaN).
func LinearRegression(xs, ys []float64) (intercept, slope float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return intercept, slope
}

// AlphaFromCounts estimates alpha by regressing log|Q(G)| on log|G|
// over (graph size, result count) observations. Zero counts contribute
// log(1) (the paper's protocol measures counts on instances large
// enough to be non-empty; clamping keeps empty classes finite).
func AlphaFromCounts(sizes []int, counts []int64) float64 {
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(counts))
	for i := range sizes {
		xs[i] = math.Log(float64(sizes[i]))
		c := counts[i]
		if c < 1 {
			c = 1
		}
		ys[i] = math.Log(float64(c))
	}
	_, slope := LinearRegression(xs, ys)
	return slope
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanStd returns both moments.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// TrimmedMean implements the warm-run protocol of Section 7.1: sort
// the observations, drop the fastest and slowest, and average the
// rest. With fewer than three observations it falls back to the plain
// mean.
func TrimmedMean(xs []float64) float64 {
	if len(xs) < 3 {
		return Mean(xs)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Mean(s[1 : len(s)-1])
}

// DiscardFarthest implements the outlier rule of Section 7.2: discard
// the k observations farthest (in absolute distance) from the overall
// mean, and return the mean of the rest.
func DiscardFarthest(xs []float64, k int) float64 {
	if k <= 0 || len(xs) <= k {
		return Mean(xs)
	}
	m := Mean(xs)
	s := append([]float64(nil), xs...)
	sort.Slice(s, func(i, j int) bool {
		return math.Abs(s[i]-m) < math.Abs(s[j]-m)
	})
	return Mean(s[:len(s)-k])
}
