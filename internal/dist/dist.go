// Package dist implements the degree distributions of gMark's graph
// configurations (paper, Section 3.1): uniform, Gaussian and Zipfian,
// plus the distinguished non-specified distribution used by the eta
// macros of Section 3.4.
//
// A Distribution is a passive description (kind plus parameters); a
// Sampler obtained from NewSampler draws integer degrees from it. All
// sampling is driven by an explicit *rand.Rand so generation stays
// deterministic under a fixed seed, including across the parallel
// emission workers of internal/graphgen (each worker owns its RNG).
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind names a distribution family. The zero value is NotSpecified, so
// a zero Distribution is the non-specified distribution.
type Kind int

const (
	// NotSpecified is the distinguished "non-specified" distribution: no
	// constraint on this side of an eta entry.
	NotSpecified Kind = iota
	// Uniform is the integer uniform distribution on [Min, Max].
	Uniform
	// Gaussian is the normal distribution with mean Mu and standard
	// deviation Sigma, rounded to the nearest non-negative integer.
	Gaussian
	// Zipfian is the discrete power law P(k) proportional to k^-S over
	// ranks 1..N.
	Zipfian
)

// String returns the XML name of the kind ("uniform", "gaussian",
// "zipfian"); it round-trips through ParseKind.
func (k Kind) String() string {
	switch k {
	case NotSpecified:
		return "non-specified"
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a distribution kind name as it appears in gMark XML
// configuration files.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "gaussian", "normal":
		return Gaussian, nil
	case "zipfian", "zipf":
		return Zipfian, nil
	case "non-specified", "nonspecified", "":
		return NotSpecified, nil
	default:
		return NotSpecified, fmt.Errorf("dist: unknown distribution type %q", s)
	}
}

// DefaultZipfN is the support cutoff used when a Zipfian distribution
// does not specify N. Degrees are drawn from 1..DefaultZipfN, which
// bounds the heaviest hub a single constraint can request while keeping
// the tail heavy enough for the paper's skew experiments.
const DefaultZipfN = 1000

// Distribution is one degree distribution D of an eta entry. Only the
// fields of the active Kind are meaningful.
type Distribution struct {
	Kind Kind

	// Uniform parameters: the closed integer interval [Min, Max].
	Min, Max int

	// Gaussian parameters.
	Mu, Sigma float64

	// Zipfian parameters: exponent S over ranks 1..N (N == 0 selects
	// DefaultZipfN).
	S float64
	N int
}

// Unspecified returns the non-specified distribution.
func Unspecified() Distribution { return Distribution{} }

// NewUniform builds the integer uniform distribution on [min, max].
func NewUniform(min, max int) Distribution {
	return Distribution{Kind: Uniform, Min: min, Max: max}
}

// NewGaussian builds the Gaussian distribution with the given mean and
// standard deviation.
func NewGaussian(mu, sigma float64) Distribution {
	return Distribution{Kind: Gaussian, Mu: mu, Sigma: sigma}
}

// NewZipfian builds the Zipfian distribution with exponent s over the
// default rank support 1..DefaultZipfN.
func NewZipfian(s float64) Distribution {
	return Distribution{Kind: Zipfian, S: s}
}

// Specified reports whether the distribution is specified (paper,
// Definition 3.1 allows eta entries with one non-specified side).
func (d Distribution) Specified() bool { return d.Kind != NotSpecified }

// Validate checks the parameters of the distribution.
func (d Distribution) Validate() error {
	switch d.Kind {
	case NotSpecified:
		return nil
	case Uniform:
		if d.Min < 0 {
			return fmt.Errorf("dist: uniform min %d < 0", d.Min)
		}
		if d.Max < d.Min {
			return fmt.Errorf("dist: uniform max %d < min %d", d.Max, d.Min)
		}
		return nil
	case Gaussian:
		if d.Mu < 0 {
			return fmt.Errorf("dist: gaussian mu %g < 0", d.Mu)
		}
		if d.Sigma < 0 {
			return fmt.Errorf("dist: gaussian sigma %g < 0", d.Sigma)
		}
		return nil
	case Zipfian:
		if d.S <= 0 {
			return fmt.Errorf("dist: zipfian exponent %g must be positive", d.S)
		}
		if d.N < 0 {
			return fmt.Errorf("dist: zipfian support %d < 0", d.N)
		}
		return nil
	default:
		return fmt.Errorf("dist: unknown kind %d", int(d.Kind))
	}
}

// zipfN resolves the rank support of a Zipfian distribution.
func (d Distribution) zipfN() int {
	if d.N > 0 {
		return d.N
	}
	return DefaultZipfN
}

// Mean returns the expected value of one draw. For the clamped
// Gaussian this is the nominal Mu; for Zipfian it is the exact mean of
// the truncated power law, H(N, S-1)/H(N, S). Non-specified
// distributions have mean 0.
func (d Distribution) Mean() float64 {
	switch d.Kind {
	case Uniform:
		return float64(d.Min+d.Max) / 2
	case Gaussian:
		return d.Mu
	case Zipfian:
		n := d.zipfN()
		var num, den float64
		for k := 1; k <= n; k++ {
			w := math.Pow(float64(k), -d.S)
			den += w
			num += w * float64(k)
		}
		if den == 0 {
			return 0
		}
		return num / den
	default:
		return 0
	}
}

// String renders the distribution for diagnostics.
func (d Distribution) String() string {
	switch d.Kind {
	case NotSpecified:
		return "non-specified"
	case Uniform:
		return fmt.Sprintf("uniform[%d,%d]", d.Min, d.Max)
	case Gaussian:
		return fmt.Sprintf("gaussian(mu=%g,sigma=%g)", d.Mu, d.Sigma)
	case Zipfian:
		return fmt.Sprintf("zipfian(s=%g,n=%d)", d.S, d.zipfN())
	default:
		return fmt.Sprintf("Kind(%d)", int(d.Kind))
	}
}

// Sampler draws integer degrees from a distribution. Samplers are
// stateless with respect to the RNG: all randomness comes from the
// *rand.Rand passed to Sample, so one immutable Sampler may be shared
// across goroutines that each own their own RNG.
type Sampler interface {
	Sample(rng *rand.Rand) int
}

// NewSampler compiles the distribution into a sampler. Zipfian
// samplers precompute the cumulative mass table once so a draw is one
// uniform variate plus a binary search.
func (d Distribution) NewSampler() (Sampler, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	switch d.Kind {
	case Uniform:
		return uniformSampler{min: d.Min, span: d.Max - d.Min + 1}, nil
	case Gaussian:
		return gaussianSampler{mu: d.Mu, sigma: d.Sigma}, nil
	case Zipfian:
		return newZipfSampler(d.S, d.zipfN()), nil
	default:
		return nil, fmt.Errorf("dist: cannot sample %s distribution", d.Kind)
	}
}

type uniformSampler struct {
	min, span int
}

func (s uniformSampler) Sample(rng *rand.Rand) int {
	return s.min + rng.Intn(s.span)
}

type gaussianSampler struct {
	mu, sigma float64
}

func (s gaussianSampler) Sample(rng *rand.Rand) int {
	k := int(math.Round(s.mu + s.sigma*rng.NormFloat64()))
	if k < 0 {
		return 0
	}
	return k
}

// zipfSampler draws ranks 1..n with P(k) proportional to k^-s via
// inversion over the precomputed CDF.
type zipfSampler struct {
	cdf []float64 // cdf[i] = P(K <= i+1), cdf[n-1] == 1
}

func newZipfSampler(s float64, n int) zipfSampler {
	cdf := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1
	return zipfSampler{cdf: cdf}
}

func (z zipfSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}
