package dist

import (
	"math"
	"math/rand"
	"testing"
)

func sampleMoments(t *testing.T, d Distribution, n int, seed int64) (mean, variance float64, max int) {
	t.Helper()
	s, err := d.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		k := s.Sample(rng)
		if k < 0 {
			t.Fatalf("negative sample %d from %v", k, d)
		}
		if k > max {
			max = k
		}
		sum += float64(k)
		sumSq += float64(k) * float64(k)
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance, max
}

func TestUniformSamplerMoments(t *testing.T) {
	d := NewUniform(2, 8)
	mean, variance, max := sampleMoments(t, d, 100_000, 1)
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("uniform[2,8] mean = %g, want ~5", mean)
	}
	// Discrete uniform on 7 values: var = (7^2-1)/12 = 4.
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("uniform[2,8] variance = %g, want ~4", variance)
	}
	if max > 8 {
		t.Errorf("uniform[2,8] sampled %d", max)
	}
	if got := d.Mean(); got != 5 {
		t.Errorf("Mean() = %g", got)
	}
}

func TestGaussianSamplerMoments(t *testing.T) {
	d := NewGaussian(6, 2)
	mean, variance, _ := sampleMoments(t, d, 100_000, 2)
	if math.Abs(mean-6) > 0.05 {
		t.Errorf("gaussian(6,2) mean = %g", mean)
	}
	// Rounding adds 1/12 to the variance; clamping at 0 is negligible
	// for mu=6, sigma=2.
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("gaussian(6,2) variance = %g, want ~4", variance)
	}
	if got := d.Mean(); got != 6 {
		t.Errorf("Mean() = %g", got)
	}
}

func TestGaussianSamplerClampsAtZero(t *testing.T) {
	// A wide Gaussian centered near zero must clamp, never go negative
	// (checked inside sampleMoments).
	mean, _, _ := sampleMoments(t, NewGaussian(0.5, 2), 50_000, 3)
	if mean < 0.5 {
		t.Errorf("clamped gaussian mean %g below nominal mu", mean)
	}
}

func TestZipfianSamplerMoments(t *testing.T) {
	d := NewZipfian(2.5)
	mean, _, max := sampleMoments(t, d, 200_000, 4)
	want := d.Mean() // H(N,1.5)/H(N,2.5), ~1.90 for N=1000
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("zipf(2.5) sample mean = %g, analytic %g", mean, want)
	}
	if want < 1.8 || want > 2.0 {
		t.Errorf("zipf(2.5) analytic mean = %g, want ~1.9", want)
	}
	if max > DefaultZipfN {
		t.Errorf("zipf sample %d exceeds support %d", max, DefaultZipfN)
	}
	// Heavy tail: the max over 200K draws must dwarf the mean.
	if float64(max) < 10*mean {
		t.Errorf("zipf(2.5) max %d vs mean %g: tail too light", max, mean)
	}
}

func TestZipfianCustomSupport(t *testing.T) {
	d := Distribution{Kind: Zipfian, S: 1.1, N: 50}
	_, _, max := sampleMoments(t, d, 50_000, 5)
	if max > 50 {
		t.Errorf("zipf support 50 produced sample %d", max)
	}
	if max < 40 {
		t.Errorf("zipf(1.1, n=50) never sampled the tail: max %d", max)
	}
}

func TestUnspecified(t *testing.T) {
	d := Unspecified()
	if d.Specified() {
		t.Error("Unspecified() is specified")
	}
	if d.Mean() != 0 {
		t.Errorf("unspecified mean = %g", d.Mean())
	}
	if _, err := d.NewSampler(); err == nil {
		t.Error("sampling a non-specified distribution should fail")
	}
	var zero Distribution
	if zero.Specified() {
		t.Error("zero Distribution must be non-specified")
	}
}

func TestValidate(t *testing.T) {
	bad := []Distribution{
		{Kind: Uniform, Min: -1, Max: 3},
		{Kind: Uniform, Min: 4, Max: 3},
		{Kind: Gaussian, Mu: -1, Sigma: 1},
		{Kind: Gaussian, Mu: 1, Sigma: -1},
		{Kind: Zipfian, S: 0},
		{Kind: Zipfian, S: -2},
		{Kind: Zipfian, S: 2, N: -5},
		{Kind: Kind(99)},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", d)
		}
	}
	good := []Distribution{
		Unspecified(),
		NewUniform(0, 0),
		NewUniform(1, 3),
		NewGaussian(0, 0),
		NewGaussian(3, 1),
		NewZipfian(1.2),
		{Kind: Zipfian, S: 2, N: 100},
	}
	for _, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", d, err)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{NotSpecified, Uniform, Gaussian, Zipfian} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v", k.String(), got)
		}
	}
	if _, err := ParseKind("pareto"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	for _, d := range []Distribution{NewUniform(0, 9), NewGaussian(3, 1), NewZipfian(1.5)} {
		s, err := d.NewSampler()
		if err != nil {
			t.Fatal(err)
		}
		r1 := rand.New(rand.NewSource(7))
		r2 := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			if a, b := s.Sample(r1), s.Sample(r2); a != b {
				t.Fatalf("%v: draw %d differs (%d vs %d)", d, i, a, b)
			}
		}
	}
}
