package query

import (
	"strings"
	"testing"

	"gmark/internal/regpath"
)

func example34() *Query {
	// The query of Example 3.4 (variables renumbered x0..x4):
	// (?x0,?x1,?x2) <- (?x0,(a.b+c)*,?x1),(?x1,a,?x3),(?x3,b-,?x2)
	// (?x0,?x1,?x2) <- (?x0,(a.b+c)*,?x1),(?x1,a,?x2)
	return &Query{
		Rules: []Rule{
			{
				Head: []Var{0, 1, 2},
				Body: []Conjunct{
					{Src: 0, Dst: 1, Expr: regpath.MustParse("(a.b+c)*")},
					{Src: 1, Dst: 3, Expr: regpath.MustParse("a")},
					{Src: 3, Dst: 2, Expr: regpath.MustParse("b-")},
				},
			},
			{
				Head: []Var{0, 1, 2},
				Body: []Conjunct{
					{Src: 0, Dst: 1, Expr: regpath.MustParse("(a.b+c)*")},
					{Src: 1, Dst: 2, Expr: regpath.MustParse("a")},
				},
			},
		},
	}
}

func TestShapeRoundTrip(t *testing.T) {
	for _, s := range []Shape{Chain, Star, Cycle, StarChain} {
		got, err := ParseShape(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("shape %v round trip = %v", s, got)
		}
	}
	if _, err := ParseShape("blob"); err == nil {
		t.Error("unknown shape should fail")
	}
	if got, _ := ParseShape("star-chain"); got != StarChain {
		t.Error("star-chain alias")
	}
}

func TestSelectivityClassRoundTrip(t *testing.T) {
	for _, c := range []SelectivityClass{Constant, Linear, Quadratic} {
		got, err := ParseSelectivityClass(c.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Errorf("class %v round trip = %v", c, got)
		}
	}
	if _, err := ParseSelectivityClass("cubic"); err == nil {
		t.Error("unknown class should fail")
	}
	if Constant.Alpha() != 0 || Linear.Alpha() != 1 || Quadratic.Alpha() != 2 {
		t.Error("Alpha values")
	}
}

func TestIntervalValidate(t *testing.T) {
	if err := (Interval{1, 3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Interval{3, 1}).Validate(); err == nil {
		t.Error("inverted interval should fail")
	}
	if err := (Interval{-1, 1}).Validate(); err == nil {
		t.Error("negative interval should fail")
	}
	if !(Interval{1, 3}).Contains(2) || (Interval{1, 3}).Contains(4) {
		t.Error("Contains broken")
	}
}

func TestSizeValidate(t *testing.T) {
	ok := Size{
		Rules:     Interval{1, 1},
		Conjuncts: Interval{1, 3},
		Disjuncts: Interval{1, 2},
		Length:    Interval{1, 4},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.Rules = Interval{0, 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero rules should fail")
	}
	bad = ok
	bad.Length = Interval{3, 1}
	if err := bad.Validate(); err == nil {
		t.Error("inverted length should fail")
	}
	// Zero-length paths are permitted.
	zeroLen := ok
	zeroLen.Length = Interval{0, 2}
	if err := zeroLen.Validate(); err != nil {
		t.Error(err)
	}
}

func TestQueryArity(t *testing.T) {
	q := example34()
	if q.Arity() != 3 {
		t.Errorf("arity = %d", q.Arity())
	}
	empty := &Query{}
	if empty.Arity() != 0 {
		t.Error("empty query arity")
	}
}

func TestQueryNumVariables(t *testing.T) {
	q := example34()
	if got := q.NumVariables(); got != 4 {
		t.Errorf("NumVariables = %d, want 4", got)
	}
}

func TestQueryHasRecursion(t *testing.T) {
	q := example34()
	if !q.HasRecursion() {
		t.Error("example 3.4 has Kleene stars")
	}
	q2 := &Query{Rules: []Rule{{
		Head: []Var{0},
		Body: []Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	if q2.HasRecursion() {
		t.Error("no star here")
	}
}

func TestQueryMeasure(t *testing.T) {
	q := example34()
	m := q.Measure()
	if m.Rules.Min != 2 || m.Rules.Max != 2 {
		t.Errorf("rules = %v", m.Rules)
	}
	if m.Conjuncts.Min != 2 || m.Conjuncts.Max != 3 {
		t.Errorf("conjuncts = %v", m.Conjuncts)
	}
	if m.Disjuncts.Min != 1 || m.Disjuncts.Max != 2 {
		t.Errorf("disjuncts = %v", m.Disjuncts)
	}
	if m.Length.Min != 1 || m.Length.Max != 2 {
		t.Errorf("length = %v", m.Length)
	}
}

func TestQueryValidate(t *testing.T) {
	if err := example34().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		q    *Query
	}{
		{"no rules", &Query{}},
		{"arity mismatch", &Query{Rules: []Rule{
			{Head: []Var{0}, Body: []Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
			{Head: []Var{0, 1}, Body: []Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
		}}},
		{"empty body", &Query{Rules: []Rule{{Head: []Var{0}}}}},
		{"unbound head", &Query{Rules: []Rule{
			{Head: []Var{9}, Body: []Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
		}}},
		{"invalid expr", &Query{Rules: []Rule{
			{Head: []Var{0}, Body: []Conjunct{{Src: 0, Dst: 1, Expr: regpath.Expr{}}}},
		}}},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: should not validate", c.name)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := example34()
	s := q.String()
	if !strings.Contains(s, "(?x0, ?x1, ?x2) <- (?x0, (a.b+c)*, ?x1), (?x1, a, ?x3), (?x3, b-, ?x2)") {
		t.Errorf("String() = %q", s)
	}
	if strings.Count(s, "\n") != 1 {
		t.Errorf("expected two lines, got %q", s)
	}
}

func TestQueryPredicates(t *testing.T) {
	q := example34()
	got := q.Predicates()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("predicates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("predicates = %v", got)
		}
	}
}

func TestBooleanQueryValid(t *testing.T) {
	q := &Query{Rules: []Rule{{
		Body: []Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 0 {
		t.Error("boolean query arity should be 0")
	}
}

func TestVarString(t *testing.T) {
	if Var(3).String() != "?x3" {
		t.Error("Var rendering")
	}
}

func TestConjunctString(t *testing.T) {
	c := Conjunct{Src: 0, Dst: 2, Expr: regpath.MustParse("a.b-")}
	if c.String() != "(?x0, a.b-, ?x2)" {
		t.Errorf("conjunct = %q", c.String())
	}
}
