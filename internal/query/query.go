// Package query implements the UCRPQ query model of gMark (paper,
// Section 3.3): unions of conjunctions of regular path queries, plus
// the workload-level vocabulary (shapes, selectivity classes, query
// size) used to constrain generated workloads.
package query

import (
	"fmt"
	"strings"

	"gmark/internal/regpath"
)

// Shape is the structural constraint f of a workload configuration.
type Shape uint8

const (
	// Chain queries link conjuncts linearly:
	// (?x0,P1,?x1),(?x1,P2,?x2),...
	Chain Shape = iota
	// Star queries share the starting variable across all conjuncts.
	Star
	// Cycle queries are two chains sharing both endpoint variables.
	Cycle
	// StarChain queries are chains with star branches at the joints.
	StarChain
)

// String returns the configuration-file name of the shape.
func (s Shape) String() string {
	switch s {
	case Chain:
		return "chain"
	case Star:
		return "star"
	case Cycle:
		return "cycle"
	case StarChain:
		return "starchain"
	default:
		return fmt.Sprintf("Shape(%d)", uint8(s))
	}
}

// ParseShape is the inverse of Shape.String.
func ParseShape(s string) (Shape, error) {
	switch strings.ToLower(s) {
	case "chain":
		return Chain, nil
	case "star":
		return Star, nil
	case "cycle":
		return Cycle, nil
	case "starchain", "star-chain":
		return StarChain, nil
	}
	return Chain, fmt.Errorf("query: unknown shape %q", s)
}

// SelectivityClass is the selectivity constraint e: the asymptotic
// growth class of |Q(G)| as a function of |G| (paper, Section 5.2.1).
type SelectivityClass uint8

const (
	// Constant queries: alpha ~ 0.
	Constant SelectivityClass = iota
	// Linear queries: alpha ~ 1.
	Linear
	// Quadratic queries: alpha ~ 2.
	Quadratic
)

// String returns the configuration-file name of the class.
func (c SelectivityClass) String() string {
	switch c {
	case Constant:
		return "constant"
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	default:
		return fmt.Sprintf("SelectivityClass(%d)", uint8(c))
	}
}

// ParseSelectivityClass is the inverse of SelectivityClass.String.
func ParseSelectivityClass(s string) (SelectivityClass, error) {
	switch strings.ToLower(s) {
	case "constant":
		return Constant, nil
	case "linear":
		return Linear, nil
	case "quadratic":
		return Quadratic, nil
	}
	return Constant, fmt.Errorf("query: unknown selectivity class %q", s)
}

// Alpha returns the nominal selectivity value of the class (0, 1, 2).
func (c SelectivityClass) Alpha() int { return int(c) }

// Interval is a closed integer interval [Min, Max].
type Interval struct {
	Min, Max int
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int) bool { return iv.Min <= v && v <= iv.Max }

// Validate checks 0 <= Min <= Max.
func (iv Interval) Validate() error {
	if iv.Min < 0 || iv.Max < iv.Min {
		return fmt.Errorf("query: invalid interval [%d,%d]", iv.Min, iv.Max)
	}
	return nil
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Min, iv.Max) }

// Size is the query size tuple t = ([rmin,rmax], [cmin,cmax],
// [dmin,dmax], [lmin,lmax]) bounding the number of rules, conjuncts,
// disjuncts and path lengths (paper, Section 3.3).
type Size struct {
	Rules     Interval
	Conjuncts Interval
	Disjuncts Interval
	Length    Interval
}

// Validate checks all four intervals; rules, conjuncts and disjuncts
// must allow at least one.
func (t Size) Validate() error {
	for _, iv := range []struct {
		name string
		iv   Interval
		min1 bool
	}{
		{"rules", t.Rules, true},
		{"conjuncts", t.Conjuncts, true},
		{"disjuncts", t.Disjuncts, true},
		{"length", t.Length, false},
	} {
		if err := iv.iv.Validate(); err != nil {
			return fmt.Errorf("%s: %w", iv.name, err)
		}
		if iv.min1 && iv.iv.Min < 1 {
			return fmt.Errorf("query: %s interval must start at >= 1, got %s", iv.name, iv.iv)
		}
	}
	return nil
}

func (t Size) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s)", t.Rules, t.Conjuncts, t.Disjuncts, t.Length)
}

// Var is a query variable, identified by index; Var(0) renders as ?x0.
type Var int

func (v Var) String() string { return fmt.Sprintf("?x%d", int(v)) }

// Conjunct is one subgoal (?src, r, ?dst) of a rule body.
type Conjunct struct {
	Src, Dst Var
	Expr     regpath.Expr
}

func (c Conjunct) String() string {
	return fmt.Sprintf("(%s, %s, %s)", c.Src, c.Expr, c.Dst)
}

// Rule is one query rule head <- body.
type Rule struct {
	// Head lists the projection variables; empty for Boolean rules.
	Head []Var
	// Body is the non-empty list of conjuncts.
	Body []Conjunct
}

// String renders the rule in the paper's notation, e.g.
// "(?x0, ?x2) <- (?x0, a.b, ?x1), (?x1, c-, ?x2)".
func (r Rule) String() string {
	heads := make([]string, len(r.Head))
	for i, v := range r.Head {
		heads[i] = v.String()
	}
	bodies := make([]string, len(r.Body))
	for i, c := range r.Body {
		bodies[i] = c.String()
	}
	return fmt.Sprintf("(%s) <- %s", strings.Join(heads, ", "), strings.Join(bodies, ", "))
}

// Query is a UCRPQ: a non-empty set of rules of equal arity.
type Query struct {
	Rules []Rule

	// Metadata recorded by the generator; not part of query semantics.

	// Shape is the structural family the query was generated from.
	Shape Shape
	// HasClass reports whether the generator targeted (and estimated) a
	// selectivity class for this query.
	HasClass bool
	// Class is the targeted/estimated selectivity class when HasClass.
	Class SelectivityClass
	// Relaxed reports that the generator had to relax some size
	// constraint to satisfy the selectivity constraint (Section 5.2.4).
	Relaxed bool
}

// Arity returns the common arity of the rules (0 for Boolean queries).
func (q *Query) Arity() int {
	if len(q.Rules) == 0 {
		return 0
	}
	return len(q.Rules[0].Head)
}

// NumVariables returns the number of distinct variables across all
// rules' bodies and heads.
func (q *Query) NumVariables() int {
	seen := make(map[Var]bool)
	for _, r := range q.Rules {
		for _, v := range r.Head {
			seen[v] = true
		}
		for _, c := range r.Body {
			seen[c.Src] = true
			seen[c.Dst] = true
		}
	}
	return len(seen)
}

// HasRecursion reports whether any conjunct carries a Kleene star.
func (q *Query) HasRecursion() bool {
	for _, r := range q.Rules {
		for _, c := range r.Body {
			if c.Expr.Star {
				return true
			}
		}
	}
	return false
}

// Measure returns the actual size tuple of the query: exact rule count
// and the min/max ranges of conjuncts, disjuncts and path lengths
// observed, for checking generated queries against a Size constraint.
func (q *Query) Measure() Size {
	t := Size{
		Rules:     Interval{Min: len(q.Rules), Max: len(q.Rules)},
		Conjuncts: Interval{Min: 1 << 30},
		Disjuncts: Interval{Min: 1 << 30},
		Length:    Interval{Min: 1 << 30},
	}
	for _, r := range q.Rules {
		t.Conjuncts.Min = min(t.Conjuncts.Min, len(r.Body))
		t.Conjuncts.Max = max(t.Conjuncts.Max, len(r.Body))
		for _, c := range r.Body {
			t.Disjuncts.Min = min(t.Disjuncts.Min, c.Expr.NumDisjuncts())
			t.Disjuncts.Max = max(t.Disjuncts.Max, c.Expr.NumDisjuncts())
			for _, p := range c.Expr.Paths {
				t.Length.Min = min(t.Length.Min, len(p))
				t.Length.Max = max(t.Length.Max, len(p))
			}
		}
	}
	return t
}

// Validate checks the UCRPQ well-formedness conditions: at least one
// rule, equal arities, non-empty bodies, head variables bound in the
// body, and valid path expressions.
func (q *Query) Validate() error {
	if len(q.Rules) == 0 {
		return fmt.Errorf("query: no rules")
	}
	arity := len(q.Rules[0].Head)
	for i, r := range q.Rules {
		if len(r.Head) != arity {
			return fmt.Errorf("query: rule %d has arity %d, rule 0 has %d", i, len(r.Head), arity)
		}
		if len(r.Body) == 0 {
			return fmt.Errorf("query: rule %d has empty body", i)
		}
		bound := make(map[Var]bool)
		for _, c := range r.Body {
			if err := c.Expr.Validate(); err != nil {
				return fmt.Errorf("query: rule %d: %w", i, err)
			}
			bound[c.Src] = true
			bound[c.Dst] = true
		}
		for _, v := range r.Head {
			if !bound[v] {
				return fmt.Errorf("query: rule %d: head variable %s not bound in body", i, v)
			}
		}
	}
	return nil
}

// String renders all rules, one per line.
func (q *Query) String() string {
	lines := make([]string, len(q.Rules))
	for i, r := range q.Rules {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

// Predicates returns the distinct predicate names used across the
// query, in first-use order.
func (q *Query) Predicates() []string {
	var names []string
	seen := make(map[string]bool)
	for _, r := range q.Rules {
		for _, c := range r.Body {
			for _, name := range c.Expr.Predicates() {
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
		}
	}
	return names
}
