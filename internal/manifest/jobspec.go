package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JobSpecFormatVersion identifies the serving job-spec wire schema;
// bump on incompatible changes. It follows the same discipline as the
// run manifest's FormatVersion: a decoder rejects any other version
// instead of guessing at the payload's meaning.
const JobSpecFormatVersion = 1

// JobSpec is the wire format a client POSTs to register one
// generation-as-a-service job: the run manifest's (config, seed,
// options) identity re-cast as a request payload. Everything a batch
// run fixes up front — the schema configuration, the master seed, the
// shard/encoding options — is carried here, because together they
// pin every slice of the job byte-for-byte: the same spec always
// serves the same bytes, on any server, in any request order.
type JobSpec struct {
	// FormatVersion must be JobSpecFormatVersion.
	FormatVersion int `json:"format_version"`
	// Usecase names a built-in paper scenario (bib, lsn, sp, wd).
	Usecase string `json:"usecase"`
	// Nodes is the requested instance size (number of graph nodes).
	Nodes int `json:"nodes"`
	// Seed drives all generation; equal specs serve equal bytes.
	Seed int64 `json:"seed"`
	// ShardEdges is graphgen.Options.ShardEdges: the emission shard
	// granularity. 0 selects the default; the value is part of the
	// job's byte identity.
	ShardEdges int `json:"shard_edges,omitempty"`
	// ShardNodes is the node-range width of one CSR graph slice
	// (graphgen's spill shardNodes). 0 selects the spill default.
	ShardNodes int `json:"shard_nodes,omitempty"`
	// SpillCompress is the default CSR slice encoding: "none", "raw",
	// "varint" (default when empty), or "deflate".
	SpillCompress string `json:"spill_compress,omitempty"`
	// Workload configures the job's query workload.
	Workload JobWorkloadSpec `json:"workload"`
}

// JobWorkloadSpec is the workload half of a JobSpec.
type JobWorkloadSpec struct {
	// Count is the number of queries in the workload.
	Count int `json:"count"`
	// Kind selects the paper's workload families: "len", "dis", "con"
	// (default when empty), or "rec".
	Kind string `json:"kind,omitempty"`
	// Classes restricts chain queries to selectivity classes
	// ("constant", "linear", "quadratic"); empty keeps the kind's
	// defaults.
	Classes []string `json:"classes,omitempty"`
	// Syntaxes lists the query syntaxes the job serves; empty means
	// all supported syntaxes.
	Syntaxes []string `json:"syntaxes,omitempty"`
}

// Validate performs the structural checks a spec must pass before a
// server resolves it: version pinning and basic field sanity. Schema
// resolution (use-case lookup, workload-kind and syntax validation)
// stays with the resolver, which owns those vocabularies.
func (s *JobSpec) Validate() error {
	if s.FormatVersion != JobSpecFormatVersion {
		return fmt.Errorf("manifest: job spec format_version %d unsupported (want %d)", s.FormatVersion, JobSpecFormatVersion)
	}
	if s.Usecase == "" {
		return fmt.Errorf("manifest: job spec names no usecase")
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("manifest: job spec nodes %d must be positive", s.Nodes)
	}
	if s.ShardEdges < -1 {
		return fmt.Errorf("manifest: job spec shard_edges %d invalid (want >= -1)", s.ShardEdges)
	}
	if s.ShardNodes < 0 {
		return fmt.Errorf("manifest: job spec shard_nodes %d must be non-negative", s.ShardNodes)
	}
	if s.Workload.Count < 0 {
		return fmt.Errorf("manifest: job spec workload count %d must be non-negative", s.Workload.Count)
	}
	return nil
}

// DecodeJobSpec parses a wire job spec strictly: unknown fields,
// trailing garbage, and any format_version other than
// JobSpecFormatVersion are rejected, so a client typo can never
// silently register a job other than the one it meant.
func DecodeJobSpec(data []byte) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("manifest: job spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("manifest: job spec: trailing data after JSON value")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeJobSpec renders a spec in its canonical wire form: fixed field
// order, no indentation. Two equal specs encode to equal bytes, which
// is what lets a server derive a deterministic job ID from the
// encoding.
func EncodeJobSpec(s *JobSpec) ([]byte, error) {
	return json.Marshal(s)
}
