package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, DefaultName)
	in := Manifest{
		Config: "bib",
		Seed:   42,
		Graph: Graph{
			Nodes:          10000,
			Edges:          14426,
			EdgeList:       "graph.txt",
			PartitionedDir: "partitioned",
			CSRSpillDir:    "csr",
		},
		Workload: Workload{
			Queries:         30,
			XML:             "workload.xml",
			TranslationsDir: "queries",
			Syntaxes:        []string{"sparql", "sql"},
			FilePattern:     QueryFilePattern,
		},
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.FormatVersion != FormatVersion || out.Generator != "gmark" {
		t.Errorf("stamped fields: version=%d generator=%q", out.FormatVersion, out.Generator)
	}
	if out.Graph != in.Graph {
		t.Errorf("graph section: got %+v, want %+v", out.Graph, in.Graph)
	}
	if out.Workload.Queries != 30 || out.Workload.XML != "workload.xml" ||
		out.Workload.TranslationsDir != "queries" || len(out.Workload.Syntaxes) != 2 {
		t.Errorf("workload section: %+v", out.Workload)
	}
	if out.Seed != 42 || out.Config != "bib" {
		t.Errorf("run identity: seed=%d config=%q", out.Seed, out.Config)
	}
}

func TestReadRejectsUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, DefaultName)
	if err := Write(path, Manifest{}); err != nil {
		t.Fatal(err)
	}
	raw, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = raw
	// Corrupt the version in place.
	data := []byte(strings.Replace(`{"format_version": 99, "generator": "gmark", "seed": 0,
		"graph": {"nodes": 0, "edges": 0}, "workload": {"queries": 0}}`, "\n", "", -1))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Error("unsupported version accepted")
	}
}

func TestRel(t *testing.T) {
	if got := Rel("/out", "/out/queries"); got != "queries" {
		t.Errorf("Rel = %q", got)
	}
	if got := Rel("/out", ""); got != "" {
		t.Errorf("Rel empty = %q", got)
	}
}
