package manifest

import (
	"reflect"
	"strings"
	"testing"
)

func validSpec() *JobSpec {
	return &JobSpec{
		FormatVersion: JobSpecFormatVersion,
		Usecase:       "bib",
		Nodes:         1000,
		Seed:          42,
		ShardNodes:    256,
		SpillCompress: "varint",
		Workload: JobWorkloadSpec{
			Count:    8,
			Kind:     "con",
			Classes:  []string{"constant", "linear"},
			Syntaxes: []string{"sparql", "cypher"},
		},
	}
}

func TestJobSpecRoundTrip(t *testing.T) {
	want := validSpec()
	data, err := EncodeJobSpec(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got, want)
	}
	// Canonical form: re-encoding the decoded spec is byte-identical,
	// the property job IDs are derived from.
	data2, err := EncodeJobSpec(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("encoding not canonical:\n first %s\nsecond %s", data, data2)
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"empty", ``, "job spec"},
		{"not json", `nonsense`, "job spec"},
		{"wrong version", `{"format_version":99,"usecase":"bib","nodes":10,"seed":1,"workload":{"count":1}}`, "format_version"},
		{"missing version", `{"usecase":"bib","nodes":10,"seed":1,"workload":{"count":1}}`, "format_version"},
		{"unknown field", `{"format_version":1,"usecase":"bib","nodes":10,"seed":1,"workload":{"count":1},"bogus":true}`, "unknown field"},
		{"no usecase", `{"format_version":1,"nodes":10,"seed":1,"workload":{"count":1}}`, "usecase"},
		{"zero nodes", `{"format_version":1,"usecase":"bib","nodes":0,"seed":1,"workload":{"count":1}}`, "nodes"},
		{"negative nodes", `{"format_version":1,"usecase":"bib","nodes":-5,"seed":1,"workload":{"count":1}}`, "nodes"},
		{"negative count", `{"format_version":1,"usecase":"bib","nodes":10,"seed":1,"workload":{"count":-1}}`, "count"},
		{"bad shard_edges", `{"format_version":1,"usecase":"bib","nodes":10,"seed":1,"shard_edges":-2,"workload":{"count":1}}`, "shard_edges"},
		{"negative shard_nodes", `{"format_version":1,"usecase":"bib","nodes":10,"seed":1,"shard_nodes":-1,"workload":{"count":1}}`, "shard_nodes"},
		{"trailing data", `{"format_version":1,"usecase":"bib","nodes":10,"seed":1,"workload":{"count":1}} {"x":1}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeJobSpec([]byte(tc.data))
			if err == nil {
				t.Fatalf("DecodeJobSpec accepted %q", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestJobSpecValidateAcceptsDefaults(t *testing.T) {
	s := &JobSpec{FormatVersion: JobSpecFormatVersion, Usecase: "wd", Nodes: 1, Workload: JobWorkloadSpec{}}
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	// ShardEdges -1 (disable intra-constraint sharding) is legal.
	s.ShardEdges = -1
	if err := s.Validate(); err != nil {
		t.Fatalf("shard_edges -1 rejected: %v", err)
	}
}
