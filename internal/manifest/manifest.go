// Package manifest defines the coupled graph+workload run manifest:
// one JSON index describing every artifact a generation run produced —
// the instance file(s), the workload XML, and the per-syntax
// translation layout — so a downstream harness can pick up a run from
// a single well-known file instead of guessing at directory
// conventions.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FormatVersion identifies the manifest schema; bump on incompatible
// changes.
const FormatVersion = 1

// DefaultName is the conventional manifest filename inside an output
// directory.
const DefaultName = "manifest.json"

// Manifest indexes the artifacts of one coupled graph+workload run.
// All paths are relative to the manifest's own directory, so the
// output tree can be moved or archived wholesale.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Generator     string `json:"generator"`
	Config        string `json:"config,omitempty"` // use-case name or configuration file
	Seed          int64  `json:"seed"`

	Graph    Graph    `json:"graph"`
	Workload Workload `json:"workload"`
}

// Graph locates the instance artifacts.
type Graph struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`

	// EdgeList is the monolithic "src pred dst" file, when written.
	EdgeList string `json:"edge_list,omitempty"`
	// NTriples is the RDF rendering, when written.
	NTriples string `json:"ntriples,omitempty"`
	// PartitionedDir holds one edge file per predicate plus
	// index.json, when written (see graphgen.PartitionedSink).
	PartitionedDir string `json:"partitioned_dir,omitempty"`
	// CSRSpillDir holds the node-range-sharded binary CSR files plus
	// csr-index.json, when written (see graphgen.CSRSpillSink).
	CSRSpillDir string `json:"csr_spill_dir,omitempty"`
}

// Workload locates the query artifacts.
type Workload struct {
	Queries int `json:"queries"`

	// XML is the UCRPQ workload file.
	XML string `json:"xml,omitempty"`
	// TranslationsDir holds the per-query concrete-syntax files,
	// named by FilePattern for every syntax in Syntaxes and every
	// query index in [0, Queries).
	TranslationsDir string   `json:"translations_dir,omitempty"`
	Syntaxes        []string `json:"syntaxes,omitempty"`
	// FilePattern is the translation filename layout, with %d the
	// query index and %s the syntax.
	FilePattern string `json:"file_pattern,omitempty"`
}

// QueryFilePattern is the translation layout SyntaxDirSink writes.
const QueryFilePattern = "query-%d.%s"

// Write stores the manifest as indented JSON at path, stamping the
// format version and generator.
func Write(path string, m Manifest) error {
	m.FormatVersion = FormatVersion
	if m.Generator == "" {
		m.Generator = "gmark"
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads and validates a manifest.
func Read(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("manifest: unsupported format version %d (have %d)", m.FormatVersion, FormatVersion)
	}
	return &m, nil
}

// Rel converts target to a path relative to the manifest directory
// base, falling back to the absolute path when no relative form
// exists (different volumes).
func Rel(base, target string) string {
	if target == "" {
		return ""
	}
	if rel, err := filepath.Rel(base, target); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(target)
}
