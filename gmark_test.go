package gmark_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gmark"
)

// smallConfig is a compact schema exercising all constraint styles.
func smallConfig(n int) *gmark.GraphConfig {
	return &gmark.GraphConfig{
		Nodes: n,
		Schema: gmark.Schema{
			Types: []gmark.NodeType{
				{Name: "user", Occurrence: gmark.Proportion(0.5)},
				{Name: "item", Occurrence: gmark.Proportion(0.5)},
				{Name: "tag", Occurrence: gmark.Fixed(30)},
			},
			Predicates: []gmark.Predicate{
				{Name: "follows", Occurrence: gmark.Proportion(0.5)},
				{Name: "owns", Occurrence: gmark.Proportion(0.4)},
				{Name: "tagged", Occurrence: gmark.Proportion(0.1)},
			},
			Constraints: []gmark.EdgeConstraint{
				{Source: "user", Target: "user", Predicate: "follows",
					In: gmark.NewZipfian(1.9), Out: gmark.NewZipfian(1.9)},
				{Source: "user", Target: "item", Predicate: "owns",
					In: gmark.NewUniform(1, 2), Out: gmark.NewGaussian(2, 1)},
				{Source: "item", Target: "tag", Predicate: "tagged",
					In: gmark.Unspecified(), Out: gmark.NewUniform(1, 1)},
			},
		},
	}
}

func TestEndToEndPipeline(t *testing.T) {
	cfg := smallConfig(2000)
	g, err := gmark.GenerateGraph(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}

	wl := gmark.WorkloadConfig{
		Graph: cfg,
		Count: 9,
		Arity: gmark.Interval{Min: 2, Max: 2},
		Size: gmark.QuerySize{
			Rules:     gmark.Interval{Min: 1, Max: 1},
			Conjuncts: gmark.Interval{Min: 1, Max: 2},
			Disjuncts: gmark.Interval{Min: 1, Max: 2},
			Length:    gmark.Interval{Min: 1, Max: 3},
		},
		Classes: []gmark.SelectivityClass{gmark.Constant, gmark.Linear, gmark.Quadratic},
		Seed:    2,
	}
	gen, err := gmark.NewWorkloadGenerator(wl)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 9 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for _, q := range qs {
		if _, err := gmark.Count(g, q, gmark.Budget{}); err != nil {
			t.Errorf("count: %v for %s", err, q)
		}
		for _, s := range []gmark.Syntax{gmark.SPARQL, gmark.OpenCypher, gmark.PostgreSQL, gmark.Datalog} {
			out, err := gmark.Translate(s, q)
			if err != nil || out == "" {
				t.Errorf("translate %s: %v", s, err)
			}
		}
	}
}

func TestSelectivityClassesHoldOnInstances(t *testing.T) {
	// The headline claim: generated classes match measured growth.
	sizes := []int{500, 1000, 2000}
	cfg := smallConfig(sizes[0])
	graphs := map[int]*gmark.Graph{}
	for _, n := range sizes {
		c := smallConfig(n)
		g, err := gmark.GenerateGraph(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		graphs[n] = g
	}
	wl := gmark.WorkloadConfig{
		Graph: cfg,
		Count: 1,
		Arity: gmark.Interval{Min: 2, Max: 2},
		Size: gmark.QuerySize{
			Rules:     gmark.Interval{Min: 1, Max: 1},
			Conjuncts: gmark.Interval{Min: 1, Max: 2},
			Disjuncts: gmark.Interval{Min: 1, Max: 1},
			Length:    gmark.Interval{Min: 1, Max: 3},
		},
		Seed: 4,
	}
	gen, err := gmark.NewWorkloadGenerator(wl)
	if err != nil {
		t.Fatal(err)
	}
	// Constant queries should not grow much; quadratic should clearly
	// outgrow linear.
	counts := map[gmark.SelectivityClass][]int64{}
	for _, class := range []gmark.SelectivityClass{gmark.Constant, gmark.Quadratic} {
		q, err := gen.GenerateWithClass(class)
		if err != nil {
			t.Fatal(err)
		}
		if !q.HasClass {
			t.Skip("generator fell back on this schema")
		}
		for _, n := range sizes {
			c, err := gmark.Count(graphs[n], q, gmark.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			counts[class] = append(counts[class], c)
		}
	}
	constGrowth := ratio64(counts[gmark.Constant][2], counts[gmark.Constant][0])
	quadGrowth := ratio64(counts[gmark.Quadratic][2], counts[gmark.Quadratic][0])
	if quadGrowth <= constGrowth {
		t.Errorf("quadratic growth %.2f should exceed constant growth %.2f (counts %v)",
			quadGrowth, constGrowth, counts)
	}
}

func ratio64(a, b int64) float64 {
	if b == 0 {
		b = 1
	}
	if a == 0 {
		a = 1
	}
	return float64(a) / float64(b)
}

func TestUseCasesViaFacade(t *testing.T) {
	for _, name := range []string{"bib", "lsn", "sp", "wd"} {
		cfg, err := gmark.UseCase(name, 500)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gmark.GenerateGraph(cfg, 5); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEnginesViaFacade(t *testing.T) {
	cfg := smallConfig(600)
	g, err := gmark.GenerateGraph(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := gmark.ParsePathExpr("owns.tagged")
	if err != nil {
		t.Fatal(err)
	}
	q := &gmark.Query{Rules: []gmark.Rule{{
		Head: []gmark.Var{0, 1},
		Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
	}}}
	want, err := gmark.Count(g, q, gmark.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	engines := gmark.Engines()
	if len(engines) != 4 {
		t.Fatalf("engines = %d", len(engines))
	}
	for _, eng := range engines {
		got, err := eng.Evaluate(g, q, gmark.Budget{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if got != want {
			t.Errorf("%s = %d, want %d", eng.Name(), got, want)
		}
	}
}

func TestBudgetViaFacade(t *testing.T) {
	cfg := smallConfig(2000)
	g, err := gmark.GenerateGraph(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := gmark.ParsePathExpr("(follows)*")
	if err != nil {
		t.Fatal(err)
	}
	q := &gmark.Query{Rules: []gmark.Rule{{
		Head: []gmark.Var{0, 1},
		Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
	}}}
	_, err = gmark.Count(g, q, gmark.Budget{Timeout: time.Nanosecond})
	if !errors.Is(err, gmark.ErrBudget) {
		t.Errorf("expected ErrBudget, got %v", err)
	}
}

func TestEstimatorViaFacade(t *testing.T) {
	cfg := smallConfig(1000)
	est, err := gmark.NewEstimator(&cfg.Schema)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := gmark.ParsePathExpr("(follows)*")
	if err != nil {
		t.Fatal(err)
	}
	q := &gmark.Query{Rules: []gmark.Rule{{
		Head: []gmark.Var{0, 1},
		Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
	}}}
	alpha, ok, err := est.EstimateAlpha(q)
	if err != nil || !ok {
		t.Fatalf("estimate: %v %v", ok, err)
	}
	// follows is Zipfian both ways: diamond, so its closure is
	// quadratic.
	if alpha != 2 {
		t.Errorf("alpha((follows)*) = %d, want 2", alpha)
	}
}

func TestTranslationsMentionPredicates(t *testing.T) {
	cfg := smallConfig(400)
	wl, err := gmark.Workload("con", cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := gmark.NewWorkloadGenerator(wl)
	if err != nil {
		t.Fatal(err)
	}
	q, err := gen.GenerateWithClass(gmark.Linear)
	if err != nil {
		t.Fatal(err)
	}
	preds := q.Predicates()
	if len(preds) == 0 {
		t.Fatal("query uses no predicates")
	}
	for _, s := range []gmark.Syntax{gmark.SPARQL, gmark.OpenCypher, gmark.PostgreSQL, gmark.Datalog} {
		out, err := gmark.Translate(s, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range preds {
			if !strings.Contains(out, p) {
				t.Errorf("%s translation omits predicate %q:\n%s", s, p, out)
			}
		}
	}
}

func TestSpillEvaluationViaFacade(t *testing.T) {
	cfg := smallConfig(1500)
	g, err := gmark.GenerateGraph(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := gmark.WriteGraphCSRSpill(dir, g, 200); err != nil {
		t.Fatal(err)
	}
	src, err := gmark.OpenGraphSpill(dir, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := gmark.ParsePathExpr("owns.tagged")
	if err != nil {
		t.Fatal(err)
	}
	q := &gmark.Query{Rules: []gmark.Rule{{
		Head: []gmark.Var{0, 1},
		Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
	}}}
	want, err := gmark.Count(g, q, gmark.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := gmark.CountOverSpill(src, q, gmark.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("spill count = %d, in-memory = %d", got, want)
	}
	if st := src.CacheStats(); st.Loads == 0 {
		t.Error("no shards loaded through the facade")
	}
}

func TestCompareEnginesOverSpillViaFacade(t *testing.T) {
	cfg := smallConfig(1200)
	g, err := gmark.GenerateGraph(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := gmark.WriteGraphCSRSpill(dir, g, 150); err != nil {
		t.Fatal(err)
	}
	src, err := gmark.OpenGraphSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := gmark.ParsePathExpr("owns.tagged")
	if err != nil {
		t.Fatal(err)
	}
	q := &gmark.Query{Rules: []gmark.Rule{{
		Head: []gmark.Var{0, 1},
		Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
	}}}
	want, err := gmark.Count(g, q, gmark.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	results := gmark.CompareEnginesOverSpill(src, q, gmark.Budget{})
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Engine] = true
		if r.Err != nil {
			t.Fatalf("engine %s over spill: %v", r.Engine, r.Err)
		}
		if r.Count != want {
			t.Errorf("engine %s over spill = %d, want %d", r.Engine, r.Count, want)
		}
	}
	for _, name := range []string{"P", "G", "S", "D"} {
		if !seen[name] {
			t.Errorf("missing engine %s in comparison", name)
		}
		if _, err := gmark.EngineByName(name); err != nil {
			t.Errorf("EngineByName(%s): %v", name, err)
		}
	}
}
