// Command gmark-bench regenerates the paper's tables and figures
// (see DESIGN.md's experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	gmark-bench -exp table2            # one experiment
//	gmark-bench -exp all -full         # everything at paper scale
//
// Experiments: table1, table2, table3, table4, fig10, fig11, fig12,
// qgen-scal, gen-scal, gen-shard, query-scal, spill-eval, spill-engines,
// spill-size, par-eval, cold-eval, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"gmark/internal/eval"
	"gmark/internal/experiments"
	"gmark/internal/graphgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gmark-bench: ")

	var (
		exp      = flag.String("exp", "all", "experiment id (table1..4, fig10..12, qgen-scal, gen-scal, gen-shard, query-scal, spill-eval, spill-engines, spill-size, par-eval, cold-eval, all)")
		full     = flag.Bool("full", false, "paper-scale sweeps (slower)")
		seed     = flag.Int64("seed", 1, "random seed")
		sizes    = flag.String("sizes", "", "comma-separated graph sizes override")
		perClass = flag.Int("queries-per-class", 0, "queries per selectivity class (0 = default)")
		budget   = flag.Duration("timeout", 60*time.Second, "per-query evaluation timeout")
		maxPairs = flag.Int64("max-pairs", 50_000_000, "per-query materialization budget")
		runs     = flag.Int("runs", 1, "engine runs per measurement; >= 3 enables the paper's cold+warm protocol (Section 7.1)")
		par      = flag.Int("parallelism", 0, "graph-generation workers (0 = all cores)")
		evalWork = flag.Int("eval-workers", 0, "evaluation workers for par-eval (0 = all cores)")
		spillCmp = flag.String("spill-compress", "", "shard encoding for spill-writing experiments (none, raw, varint, deflate; empty = default varint; cold-eval sweeps encodings itself)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	// The same parse/validate path cmd/gmark uses, so an invalid or
	// reserved encoding (zstd) fails here with the same error text
	// instead of deep inside an experiment.
	if *spillCmp != "" {
		if _, err := graphgen.ParseSpillCompression(*spillCmp); err != nil {
			log.Fatal(err)
		}
	}

	opt := experiments.Options{
		Seed:            *seed,
		Full:            *full,
		QueriesPerClass: *perClass,
		Budget:          eval.Budget{MaxPairs: *maxPairs, Timeout: *budget},
		Runs:            *runs,
		Parallelism:     *par,
		EvalWorkers:     *evalWork,
		SpillCompress:   *spillCmp,
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad size %q", s)
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "table3", "table4", "fig10", "fig11", "fig12", "qgen-scal", "gen-scal", "gen-shard", "query-scal", "spill-eval", "spill-engines", "spill-size", "par-eval", "cold-eval", "coverage"}
	}
	for _, id := range ids {
		fmt.Printf("\n================ %s ================\n", id)
		start := time.Now()
		if err := run(id, opt); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(id string, opt experiments.Options) error {
	switch id {
	case "table1":
		rows, err := experiments.Table1(opt)
		if err != nil {
			return err
		}
		experiments.RenderTable1(os.Stdout, rows)
	case "table2":
		rows, err := experiments.Table2(opt)
		if err != nil {
			return err
		}
		experiments.RenderTable2(os.Stdout, rows)
	case "table3":
		rows, err := experiments.Table3(opt)
		if err != nil {
			return err
		}
		experiments.RenderTable3(os.Stdout, rows)
	case "table4":
		rows, err := experiments.Table4(opt)
		if err != nil {
			return err
		}
		experiments.RenderTable4(os.Stdout, rows)
	case "fig10":
		series, err := experiments.Fig10(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig10(os.Stdout, series)
	case "fig11":
		series, err := experiments.Fig11(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig11(os.Stdout, series)
	case "fig12":
		results, err := experiments.Fig12(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig12(os.Stdout, results)
	case "qgen-scal":
		rows, err := experiments.QGenScalability(opt)
		if err != nil {
			return err
		}
		experiments.RenderScalability(os.Stdout, rows)
	case "gen-scal":
		rows, err := experiments.GraphGenScalability(opt)
		if err != nil {
			return err
		}
		experiments.RenderGenScalability(os.Stdout, rows)
	case "gen-shard":
		rows, err := experiments.GenShardScalability(opt)
		if err != nil {
			return err
		}
		experiments.RenderGenShardScalability(os.Stdout, rows)
	case "query-scal":
		rows, err := experiments.WorkloadScalability(opt)
		if err != nil {
			return err
		}
		experiments.RenderWorkloadScalability(os.Stdout, rows)
	case "spill-eval":
		rows, err := experiments.SpillEval(opt)
		if err != nil {
			return err
		}
		experiments.RenderSpillEval(os.Stdout, rows)
	case "par-eval":
		rows, err := experiments.ParEval(opt)
		if err != nil {
			return err
		}
		experiments.RenderParEval(os.Stdout, rows)
	case "spill-engines":
		rows, err := experiments.SpillEngines(opt)
		if err != nil {
			return err
		}
		experiments.RenderSpillEngines(os.Stdout, rows)
	case "cold-eval":
		rows, err := experiments.ColdEval(opt)
		if err != nil {
			return err
		}
		experiments.RenderColdEval(os.Stdout, rows)
	case "spill-size":
		rows, err := experiments.SpillSize(opt)
		if err != nil {
			return err
		}
		experiments.RenderSpillSize(os.Stdout, rows)
	case "coverage":
		rows, err := experiments.Coverage(opt)
		if err != nil {
			return err
		}
		experiments.RenderCoverage(os.Stdout, rows)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
