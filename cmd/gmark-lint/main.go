// Command gmark-lint runs gmarklint, the repo's invariant-enforcing
// static-analysis suite (internal/lint), over the module tree.
//
//	go run ./cmd/gmark-lint ./...
//
// It loads every buildable package once, runs the analyzer registry
// (determinism, formats, concurrency, sinkflush, exporteddoc), and
// prints one "file:line: analyzer: message" per unsuppressed finding,
// exiting 1 if there are any. Suppress a finding only with
// //lint:ignore <analyzer> <reason> on the flagged line or the line
// above; the reason is mandatory. The internal/lint tier-1 test runs
// the exact same registry, so CI and local runs agree by construction.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gmark/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gmark-lint [-list] [./... | dir ...]\n\nRuns the gmarklint analyzer registry over the module (or the given\nsubdirectories). See docs/LINTS.md for the analyzer catalogue.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmark-lint:", err)
		os.Exit(2)
	}

	diags, err := lint.LintTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmark-lint:", err)
		os.Exit(2)
	}

	keep := filters(root, flag.Args())
	found := 0
	for _, d := range diags {
		if !keep(d.Pos.Filename) {
			continue
		}
		found++
		fmt.Println(d)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "gmark-lint: %d finding(s); suppress only with //lint:ignore <analyzer> <reason>\n", found)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so gmark-lint always lints whole packages with a consistent
// root no matter where it is invoked.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// filters interprets the positional arguments: none or "./..." means
// everything; anything else is a directory prefix to keep (with or
// without a trailing "/...").
func filters(root string, args []string) func(file string) bool {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			return func(string) bool { return true }
		}
		prefixes = append(prefixes, filepath.Join(root, a)+string(filepath.Separator))
	}
	if len(prefixes) == 0 {
		return func(string) bool { return true }
	}
	return func(file string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(file, p) {
				return true
			}
		}
		return false
	}
}
