package main

import (
	"flag"
	"log"
	"net/http"

	"gmark/internal/serve"
)

// serveMain runs the deterministic slice server:
//
//	gmark serve -addr :8080
//
// Clients POST job specs to /v1/jobs and fetch graph shards and
// workload windows on demand; every slice is generated from the spec
// at request time and its bytes are pinned equal to what the batch
// sinks write for the same coordinates (see docs/SERVING.md).
func serveMain(args []string) {
	fs := flag.NewFlagSet("gmark serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheMB    = fs.Int("cache-mb", 0, "slice-cache budget in MiB (0 = default 256 MiB)")
		maxJobs    = fs.Int("max-jobs", 0, "registered-job ceiling (0 = default 1024)")
		maxNodes   = fs.Int("max-nodes", 0, "largest graph a job may configure, in nodes (0 = default 10M)")
		maxQueries = fs.Int("max-queries", 0, "largest workload a job may configure, in queries (0 = default 1M)")
		par        = fs.Int("parallelism", 0, "generation workers per slice (0 = all cores; slice bytes are identical for any value)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("serve: unexpected arguments %q", fs.Args())
	}
	srv := serve.New(serve.Options{
		CacheBytes:  int64(*cacheMB) << 20,
		MaxJobs:     *maxJobs,
		MaxNodes:    *maxNodes,
		MaxQueries:  *maxQueries,
		Parallelism: *par,
	})
	log.Printf("slice server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
