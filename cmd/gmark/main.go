// Command gmark is the generator CLI: it reads a gMark XML
// configuration (or a built-in use case), generates a graph instance
// and a coupled query workload, and writes the graph (edge list and/or
// N-Triples), the workload (UCRPQs as XML), and the queries translated
// into the four concrete syntaxes — the full workflow of the paper's
// Fig. 1.
//
// Both generators run the same plan/emit/sink pipeline architecture:
// -parallelism controls the worker count of graph and workload
// emission alike, and output is seed-deterministic for any value.
//
// Usage:
//
//	gmark -usecase bib -nodes 10000 -queries 20 -out ./out
//	gmark -config config.xml -out ./out -ntriples
//	gmark -usecase bib -verify -syntax sparql,sql -workload-out ./queries
//	gmark -eval-spill ./out/csr -eval-query "authors-.authors" -eval-cache-mb 64
//	gmark -eval-spill ./out/csr -eval-query "(authors-.authors)*" -eval-engine all
//	gmark serve -addr :8080
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gmark/internal/engines"
	"gmark/internal/eval"
	"gmark/internal/gconfig"
	"gmark/internal/graphgen"
	"gmark/internal/graphstat"
	"gmark/internal/manifest"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/schema"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gmark: ")

	// The serve subcommand has its own flag set; everything else is the
	// classic single-command batch CLI.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}

	var (
		configPath  = flag.String("config", "", "gMark XML configuration file (overrides -usecase)")
		usecase     = flag.String("usecase", "bib", "built-in use case: bib, lsn, sp, wd")
		nodes       = flag.Int("nodes", 10000, "graph size (number of nodes) for built-in use cases")
		numQueries  = flag.Int("queries", 30, "number of workload queries")
		kind        = flag.String("workload", "con", "workload kind: len, dis, con, rec")
		classes     = flag.String("selectivity", "constant,linear,quadratic", "comma-separated selectivity classes, or empty to disable selectivity control")
		seed        = flag.Int64("seed", 1, "random seed")
		outDir      = flag.String("out", "out", "output directory")
		ntriples    = flag.Bool("ntriples", false, "also write the graph as N-Triples")
		checkTol    = flag.Float64("consistency", 0.25, "warn when in/out expected edge counts drift more than this fraction")
		profile     = flag.Bool("profile", false, "print the workload diversity profile to stderr (streamed; the workload is never re-scanned)")
		stream      = flag.Bool("stream", false, "stream the graph to disk without materializing it (for very large instances)")
		par         = flag.Int("parallelism", 0, "graph- and workload-generation workers (0 = all cores; output is seed-deterministic for any value)")
		shardEdges  = flag.Int("shard-edges", 0, "target edges per graph-emission shard (0 = default 128K; negative disables intra-constraint sharding)")
		partition   = flag.Bool("partition", false, "also write the graph partitioned by predicate (one edge file each + index.json) under <out>/partitioned")
		partBinary  = flag.Bool("partition-binary", false, "write -partition edge files as binary delta-varint pairs instead of text lines (severalfold smaller; implies -partition)")
		csrSpill    = flag.Bool("csr-spill", false, "also spill the graph as node-range-sharded binary CSR files under <out>/csr")
		spillComp   = flag.String("spill-compress", "varint", "CSR spill shard encoding: none (legacy v2), raw (mappable fixed-width v3), varint (delta-varint v3), deflate (varint + per-shard DEFLATE frame when smaller), zstd (reserved)")
		verify      = flag.Bool("verify", false, "check the generated instance's degree statistics against the configured distributions (materialized path only)")
		workloadOut = flag.String("workload-out", "", "directory for per-query translated files (default <out>/queries)")
		syntax      = flag.String("syntax", "sparql,cypher,sql,datalog", "comma-separated translation syntaxes for the per-query files, or empty to skip translation")
		manifestOut = flag.String("manifest", manifest.DefaultName, "filename (relative to -out) of the JSON run manifest indexing all artifacts; empty disables")
		evalSpill   = flag.String("eval-spill", "", "evaluate -eval-query over this CSR spill directory (written by -csr-spill) and exit; generation is skipped")
		evalQuery   = flag.String("eval-query", "", "regular path expression to count over the spill, e.g. \"authors-.authors\"")
		evalCacheMB = flag.Int("eval-cache-mb", 0, "shard-cache budget in MiB for -eval-spill (0 = default 256 MiB)")
		evalEngine  = flag.String("eval-engine", "", "evaluate -eval-query with a simulated engine instead of the reference evaluator: P, G, S, D, or \"all\" to compare every engine")
		evalWorkers = flag.Int("eval-workers", 0, "evaluation workers for -eval-spill (0 = all cores, 1 = sequential; counts are identical for any value)")
		evalMmap    = flag.Bool("spill-mmap", false, "serve raw (-spill-compress=raw) shards of -eval-spill zero-copy from memory mappings; other encodings fall back to decoding")
		evalPref    = flag.Int("eval-prefetch", 0, "node ranges to warm ahead of the -eval-spill scan with a background prefetcher (0 = off)")
	)
	flag.Parse()

	if *evalSpill != "" {
		if err := evalOverSpill(*evalSpill, *evalQuery, *evalCacheMB, *evalEngine, *evalWorkers, *evalMmap, *evalPref); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *evalEngine != "" {
		log.Fatal("-eval-engine requires -eval-spill")
	}

	comp, err := graphgen.ParseSpillCompression(*spillComp)
	if err != nil {
		log.Fatal(err)
	}
	if *partBinary {
		*partition = true
	}

	var gcfg *schema.GraphConfig
	var wcfg querygen.Config
	var haveWorkloadCfg bool
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := gconfig.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		gcfg, err = doc.GraphConfig()
		if err != nil {
			log.Fatal(err)
		}
		if w, err := doc.WorkloadConfig(); err == nil {
			wcfg = w
			haveWorkloadCfg = true
		}
	} else {
		var err error
		gcfg, err = usecases.ByName(*usecase, *nodes)
		if err != nil {
			log.Fatal(err)
		}
	}

	for _, w := range gcfg.CheckConsistency(*checkTol) {
		log.Printf("warning: %s", w)
	}

	if !haveWorkloadCfg {
		var err error
		wcfg, err = usecases.Workload(*kind, gcfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		wcfg.Count = *numQueries
		wcfg.Classes = nil
		if *classes != "" {
			for _, name := range splitComma(*classes) {
				c, err := query.ParseSelectivityClass(name)
				if err != nil {
					log.Fatal(err)
				}
				wcfg.Classes = append(wcfg.Classes, c)
			}
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// The run manifest accumulates artifact locations as they are
	// written; paths are stored relative to the output directory.
	man := manifest.Manifest{Seed: *seed, Config: *usecase}
	if *configPath != "" {
		man.Config = *configPath
	}

	var partDir, csrDir string
	if *partition {
		partDir = filepath.Join(*outDir, "partitioned")
	}
	if *csrSpill {
		csrDir = filepath.Join(*outDir, "csr")
	}

	// Graph generation: materialized by default, streaming for very
	// large instances. Both paths run the same sharded pipeline; only
	// the sinks differ — and one pass can feed several of them.
	genOpt := graphgen.Options{Seed: *seed, Parallelism: *par, ShardEdges: *shardEdges}
	graphPath := filepath.Join(*outDir, "graph.txt")
	man.Graph.EdgeList = "graph.txt"
	if *stream {
		err := writeFile(graphPath, func(w *os.File) error {
			ws, err := graphgen.NewWriterSink(w, gcfg)
			if err != nil {
				return err
			}
			sinks := []graphgen.EdgeSink{ws}
			if partDir != "" {
				ps, err := newPartSink(partDir, gcfg, *partBinary)
				if err != nil {
					return err
				}
				sinks = append(sinks, ps)
			}
			if csrDir != "" {
				cs, err := graphgen.NewCSRSpillSinkWith(csrDir, gcfg, 0, comp)
				if err != nil {
					return err
				}
				sinks = append(sinks, cs)
			}
			n, err := graphgen.Emit(gcfg, genOpt, graphgen.MultiEdgeSink(sinks...))
			if err == nil {
				log.Printf("graph (streamed): %d nodes, %d edges", ws.Nodes(), n)
				man.Graph.Nodes, man.Graph.Edges = ws.Nodes(), n
			}
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		if *ntriples {
			log.Printf("note: -ntriples requires the materialized path; skipped under -stream")
		}
		if *verify {
			log.Printf("note: -verify requires the materialized path; skipped under -stream")
		}
	} else {
		// One pipeline pass feeds the in-memory graph and every extra
		// output format with batch delivery; the graph is frozen after
		// the pass drains (exactly what graphgen.Generate does).
		gs, err := graphgen.NewGraphSinkFor(gcfg)
		if err != nil {
			log.Fatal(err)
		}
		sinks := []graphgen.EdgeSink{gs}
		if partDir != "" {
			ps, err := newPartSink(partDir, gcfg, *partBinary)
			if err != nil {
				log.Fatal(err)
			}
			sinks = append(sinks, ps)
		}
		if _, err := graphgen.Emit(gcfg, genOpt, graphgen.MultiEdgeSink(sinks...)); err != nil {
			log.Fatal(err)
		}
		g := gs.Graph()
		g.Freeze()
		log.Printf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		man.Graph.Nodes, man.Graph.Edges = g.NumNodes(), g.NumEdges()
		if partDir != "" {
			log.Printf("partitioned: %d predicates in %s", g.NumPredicates(), partDir)
		}
		if csrDir != "" {
			// The frozen graph already holds both CSR directions;
			// spill those instead of buffering a second edge copy in a
			// CSRSpillSink and rebuilding the adjacency.
			if err := graphgen.WriteCSRSpillFromGraphWith(csrDir, g, 0, comp); err != nil {
				log.Fatal(err)
			}
			log.Printf("csr spill: %d predicates in %s", g.NumPredicates(), csrDir)
		}
		if *verify {
			reports := graphstat.Check(g, gcfg, *checkTol)
			bad := 0
			for _, r := range reports {
				if !r.OK {
					bad++
					log.Printf("verify: FAIL %s", r)
				}
			}
			if bad > 0 {
				log.Printf("verify: %d/%d distribution sides failed", bad, len(reports))
			} else {
				log.Printf("verify: all %d distribution sides consistent with the configuration", len(reports))
			}
		}
		if err := writeFile(graphPath, func(w *os.File) error {
			return g.WriteEdgeList(w)
		}); err != nil {
			log.Fatal(err)
		}
		if *ntriples {
			if err := writeFile(filepath.Join(*outDir, "graph.nt"), func(w *os.File) error {
				return g.WriteNTriples(w, "")
			}); err != nil {
				log.Fatal(err)
			}
			man.Graph.NTriples = "graph.nt"
		}
	}
	if partDir != "" {
		man.Graph.PartitionedDir = "partitioned"
	}
	if csrDir != "" {
		man.Graph.CSRSpillDir = "csr"
	}

	// Workload generation: one pipeline pass fans queries out to every
	// requested sink — the in-memory slice (for the XML workload file),
	// the streaming profile, and the multi-syntax directory.
	gen, err := querygen.New(wcfg)
	if err != nil {
		log.Fatal(err)
	}
	slice := &querygen.SliceSink{}
	sinks := []querygen.QuerySink{slice}
	var prof *querygen.ProfileSink
	if *profile {
		prof = querygen.NewProfileSink()
		sinks = append(sinks, prof)
	}
	var dirSink *querygen.SyntaxDirSink
	if *syntax != "" {
		var syns []translate.Syntax
		for _, name := range splitComma(*syntax) {
			s, err := translate.ParseSyntax(name)
			if err != nil {
				log.Fatal(err)
			}
			syns = append(syns, s)
		}
		qdir := *workloadOut
		if qdir == "" {
			qdir = filepath.Join(*outDir, "queries")
		}
		dirSink, err = querygen.NewSyntaxDirSink(qdir, syns)
		if err != nil {
			log.Fatal(err)
		}
		sinks = append(sinks, dirSink)
	}
	n, err := gen.Emit(querygen.Options{Parallelism: *par}, querygen.MultiSink(sinks...))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("workload: %d queries", n)
	if prof != nil {
		prof.Profile().Render(os.Stderr)
	}
	if err := writeFile(filepath.Join(*outDir, "workload.xml"), func(w *os.File) error {
		return gconfig.WriteQueries(w, slice.Queries)
	}); err != nil {
		log.Fatal(err)
	}
	man.Workload.Queries = n
	man.Workload.XML = "workload.xml"
	if dirSink != nil {
		log.Printf("translations: %d queries x %d syntaxes in %s",
			dirSink.Count(), len(dirSink.Syntaxes()), dirSink.Dir())
		man.Workload.TranslationsDir = manifest.Rel(*outDir, dirSink.Dir())
		man.Workload.FilePattern = manifest.QueryFilePattern
		for _, s := range dirSink.Syntaxes() {
			man.Workload.Syntaxes = append(man.Workload.Syntaxes, string(s))
		}
	}
	if *manifestOut != "" {
		path := *manifestOut
		if !filepath.IsAbs(path) {
			path = filepath.Join(*outDir, path)
		}
		if err := manifest.Write(path, man); err != nil {
			log.Fatal(err)
		}
		log.Printf("manifest: %s", path)
	}
	log.Printf("wrote %s", *outDir)
}

var errMissingEvalQuery = errors.New("-eval-spill requires -eval-query (a regular path expression)")

// evalOverSpill is the out-of-core evaluation mode: it opens a CSR
// spill directory, counts the distinct (source, target) pairs of one
// regular path expression over it — with the reference evaluator or a
// selected simulated engine — and reports the shard-cache behavior,
// without ever materializing the instance.
func evalOverSpill(dir, expr string, cacheMB int, engine string, workers int, useMmap bool, prefetch int) error {
	if expr == "" {
		return errMissingEvalQuery
	}
	e, err := regpath.Parse(expr)
	if err != nil {
		return err
	}
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: e}},
	}}}
	src, err := eval.OpenSpillSourceWith(dir, eval.SpillSourceOptions{
		CacheBytes: int64(cacheMB) << 20,
		Mmap:       useMmap,
	})
	if err != nil {
		return err
	}
	opt := eval.EvalOptions{Workers: workers, Prefetch: prefetch}
	log.Printf("spill: %d nodes, %d edges, %d predicates in %s",
		src.NumNodes(), src.NumEdges(), len(src.Manifest().Predicates), dir)

	switch engine {
	case "":
		n, err := eval.CountOverSpillWith(src, q, eval.Budget{}, opt)
		if err != nil {
			return err
		}
		log.Printf("count(%s) = %d", expr, n)
	case "all":
		failed := 0
		for _, eng := range engines.All() {
			start := time.Now()
			n, err := engines.EvaluateOpt(eng, src, q, eval.Budget{}, opt)
			if err == nil {
				err = src.Err()
			}
			if err != nil {
				failed++
				log.Printf("engine %s: failed after %v: %v", eng.Name(), time.Since(start).Round(time.Millisecond), err)
				continue
			}
			log.Printf("engine %s: count(%s) = %d in %v", eng.Name(), expr, n, time.Since(start).Round(time.Millisecond))
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d engines failed", failed, len(engines.All()))
		}
	default:
		eng, err := engines.ByName(engine)
		if err != nil {
			return err
		}
		n, err := engines.EvaluateOpt(eng, src, q, eval.Budget{}, opt)
		if err == nil {
			err = src.Err()
		}
		if err != nil {
			return err
		}
		log.Printf("engine %s: count(%s) = %d", eng.Name(), expr, n)
	}
	st := src.CacheStats()
	log.Printf("shard cache: %d loads (%d prefetched, %d bytes from disk), %d hits (%d deduped in flight), %d evictions, %d domain-rebuild reads, %d bytes resident (%d mapped, peak %d)",
		st.Loads, st.PrefetchLoads, st.DiskBytesLoaded, st.Hits, st.DedupHits, st.Evictions, st.DomainRebuilds, st.BytesUsed, st.MappedBytes, st.PeakBytes)
	return nil
}

// newPartSink opens the partitioned sink in the mode the flags chose.
func newPartSink(dir string, gcfg *schema.GraphConfig, binary bool) (*graphgen.PartitionedSink, error) {
	if binary {
		return graphgen.NewBinaryPartitionedSink(dir, gcfg)
	}
	return graphgen.NewPartitionedSink(dir, gcfg)
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
