// Command quickstart is the minimal end-to-end gMark pipeline: define
// a small schema, generate a graph instance, generate a
// selectivity-controlled query workload coupled to it, translate one
// query into all four concrete syntaxes, and evaluate it.
package main

import (
	"fmt"
	"log"

	"gmark"
)

func main() {
	// A three-type schema: a growing population of users posting
	// messages, in a fixed set of rooms. Users follow each other with
	// a power law in both directions — the quadratic chokepoint.
	cfg := &gmark.GraphConfig{
		Nodes: 5000,
		Schema: gmark.Schema{
			Types: []gmark.NodeType{
				{Name: "user", Occurrence: gmark.Proportion(0.40)},
				{Name: "message", Occurrence: gmark.Proportion(0.60)},
				{Name: "room", Occurrence: gmark.Fixed(50)},
			},
			Predicates: []gmark.Predicate{
				{Name: "follows", Occurrence: gmark.Proportion(0.45)},
				{Name: "wrote", Occurrence: gmark.Proportion(0.45)},
				{Name: "in", Occurrence: gmark.Proportion(0.10)},
			},
			Constraints: []gmark.EdgeConstraint{
				{Source: "user", Target: "user", Predicate: "follows",
					In: gmark.NewZipfian(1.8), Out: gmark.NewZipfian(1.8)},
				{Source: "user", Target: "message", Predicate: "wrote",
					In: gmark.NewUniform(1, 1), Out: gmark.NewGaussian(3, 1)},
				{Source: "message", Target: "room", Predicate: "in",
					In: gmark.Unspecified(), Out: gmark.NewUniform(1, 1)},
			},
		},
	}

	g, err := gmark.GenerateGraph(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	wl := gmark.WorkloadConfig{
		Graph: cfg,
		Count: 6,
		Arity: gmark.Interval{Min: 2, Max: 2},
		Size: gmark.QuerySize{
			Rules:     gmark.Interval{Min: 1, Max: 1},
			Conjuncts: gmark.Interval{Min: 1, Max: 3},
			Disjuncts: gmark.Interval{Min: 1, Max: 2},
			Length:    gmark.Interval{Min: 1, Max: 3},
		},
		Classes: []gmark.SelectivityClass{gmark.Constant, gmark.Linear, gmark.Quadratic},
		Seed:    7,
	}
	gen, err := gmark.NewWorkloadGenerator(wl)
	if err != nil {
		log.Fatal(err)
	}

	for _, class := range []gmark.SelectivityClass{gmark.Constant, gmark.Linear, gmark.Quadratic} {
		q, err := gen.GenerateWithClass(class)
		if err != nil {
			log.Fatal(err)
		}
		count, err := gmark.Count(g, q, gmark.Budget{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s query (|Q(G)| = %d):\n  %s\n", class, count, q)
	}

	// Translate one more query into every supported syntax.
	q, err := gen.GenerateWithClass(gmark.Linear)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntranslations of: %s\n", q)
	for _, syntax := range []gmark.Syntax{gmark.SPARQL, gmark.OpenCypher, gmark.PostgreSQL, gmark.Datalog} {
		text, err := gmark.Translate(syntax, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n%s", syntax, text)
	}
}
