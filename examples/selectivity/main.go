// Command selectivity is a miniature of the paper's Table 2 quality
// study on the dense WatDiv-style use case: it generates per-class
// query workloads, evaluates them on WD instances of increasing size,
// fits the selectivity exponent alpha of each query by log-log
// regression, and prints the per-class aggregate — demonstrating that
// the schema-driven estimates (alpha ~ 0, 1, 2) hold on generated
// data without ever consulting an instance during query generation.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"gmark"
)

func main() {
	sizes := []int{500, 1000, 2000, 4000}
	const queriesPerClass = 4

	cfg := gmark.WD(sizes[0])
	graphs := make(map[int]*gmark.Graph, len(sizes))
	for _, n := range sizes {
		c := gmark.WD(n)
		g, err := gmark.GenerateGraph(c, 3)
		if err != nil {
			log.Fatal(err)
		}
		graphs[n] = g
		fmt.Printf("WD instance n=%d: %d nodes, %d edges\n", n, g.NumNodes(), g.NumEdges())
	}

	wl, err := gmark.Workload("con", cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := gmark.NewWorkloadGenerator(wl)
	if err != nil {
		log.Fatal(err)
	}

	budget := gmark.Budget{MaxPairs: 30_000_000, Timeout: 30 * time.Second}
	fmt.Printf("\n%-10s %-60s %8s\n", "class", "query", "alpha")
	for _, class := range []gmark.SelectivityClass{gmark.Constant, gmark.Linear, gmark.Quadratic} {
		var alphas []float64
		for i := 0; i < queriesPerClass; i++ {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				log.Fatal(err)
			}
			var xs, ys []float64
			failed := false
			for _, n := range sizes {
				count, err := gmark.Count(graphs[n], q, budget)
				if err != nil {
					failed = true
					break
				}
				if count < 1 {
					count = 1
				}
				xs = append(xs, math.Log(float64(n)))
				ys = append(ys, math.Log(float64(count)))
			}
			if failed {
				fmt.Printf("%-10s %-60s %8s\n", class, clip(q), "budget!")
				continue
			}
			alpha := slope(xs, ys)
			alphas = append(alphas, alpha)
			fmt.Printf("%-10s %-60s %8.2f\n", class, clip(q), alpha)
		}
		if len(alphas) > 0 {
			fmt.Printf("%-10s %-60s %8.2f  <- mean (target %d)\n\n",
				class, "", mean(alphas), class.Alpha())
		}
	}
}

func clip(q *gmark.Query) string {
	s := q.Rules[0].String()
	if len(s) > 58 {
		return s[:55] + "..."
	}
	return s
}

func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
