// Command bibgraph reproduces the paper's motivating example
// (Section 3.1, Fig. 2) end to end: it builds the bibliographical
// schema by hand, checks the in/out consistency of its constraints,
// exports the configuration as gMark XML, generates instances of
// increasing size, and verifies the schema's real-world invariants on
// the generated data (papers have exactly one conference; the city
// population stays fixed while researchers grow; paper counts per
// researcher are heavy-tailed).
package main

import (
	"fmt"
	"log"
	"os"

	"gmark"
	"gmark/internal/gconfig"
)

func main() {
	// Fig. 2, built from scratch with the public API (usecases.Bib is
	// the packaged equivalent).
	cfg := &gmark.GraphConfig{
		Nodes: 10000,
		Schema: gmark.Schema{
			Types: []gmark.NodeType{
				{Name: "researcher", Occurrence: gmark.Proportion(0.50)},
				{Name: "paper", Occurrence: gmark.Proportion(0.30)},
				{Name: "journal", Occurrence: gmark.Proportion(0.10)},
				{Name: "conference", Occurrence: gmark.Proportion(0.10)},
				{Name: "city", Occurrence: gmark.Fixed(100)},
			},
			Predicates: []gmark.Predicate{
				{Name: "authors", Occurrence: gmark.Proportion(0.50)},
				{Name: "publishedIn", Occurrence: gmark.Proportion(0.30)},
				{Name: "heldIn", Occurrence: gmark.Proportion(0.10)},
				{Name: "extendedTo", Occurrence: gmark.Proportion(0.10)},
			},
			Constraints: []gmark.EdgeConstraint{
				{Source: "researcher", Target: "paper", Predicate: "authors",
					In: gmark.NewGaussian(3, 1), Out: gmark.NewZipfian(2.5)},
				{Source: "paper", Target: "conference", Predicate: "publishedIn",
					In: gmark.NewGaussian(3, 1), Out: gmark.NewUniform(1, 1)},
				{Source: "paper", Target: "journal", Predicate: "extendedTo",
					In: gmark.NewGaussian(1.5, 0.5), Out: gmark.NewUniform(0, 1)},
				{Source: "conference", Target: "city", Predicate: "heldIn",
					In: gmark.NewZipfian(1.2), Out: gmark.NewUniform(1, 1)},
			},
		},
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// The consistency check of Section 3.2.
	for _, w := range cfg.CheckConsistency(0.25) {
		fmt.Printf("consistency note: %s\n", w)
	}

	// "Specifying all constraints ... can be easily done via a few
	// lines of XML" — export the declarative form.
	fmt.Println("\n--- configuration as gMark XML ---")
	if err := gconfig.Write(os.Stdout, gconfig.FromGraphConfig(cfg)); err != nil {
		log.Fatal(err)
	}

	// Generate instances of two sizes and verify the schema's
	// real-world shape claims.
	for _, n := range []int{5000, 20000} {
		cfg.Nodes = n
		g, err := gmark.GenerateGraph(cfg, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== instance with n=%d: %d nodes, %d edges ===\n",
			n, g.NumNodes(), g.NumEdges())

		researcher := g.TypeIndex("researcher")
		paper := g.TypeIndex("paper")
		city := g.TypeIndex("city")
		authors := g.PredIndex("authors")
		publishedIn := g.PredIndex("publishedIn")

		fmt.Printf("researchers: %d (grows with n)\n", g.TypeCount(researcher))
		fmt.Printf("cities:      %d (fixed)\n", g.TypeCount(city))

		// Every paper is published in exactly one conference.
		pubStats := g.OutDegreeStats(paper, publishedIn)
		fmt.Printf("papers with exactly one conference: %d/%d (max=%d)\n",
			pubStats.NonZero, pubStats.Count, pubStats.Max)

		// The number of papers per researcher is Zipfian: compare the
		// top author against the mean.
		authStats := g.OutDegreeStats(researcher, authors)
		fmt.Printf("papers per researcher: mean=%.2f max=%d (heavy tail)\n",
			authStats.Mean, authStats.Max)

		// The co-authorship query from Section 3.1:
		// (authors.authors-)* — all pairs of researchers linked by a
		// co-authorship path.
		expr, err := gmark.ParsePathExpr("(authors.authors-)*")
		if err != nil {
			log.Fatal(err)
		}
		q := &gmark.Query{
			Rules: []gmark.Rule{{
				Head: []gmark.Var{0, 1},
				Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
			}},
		}
		count, err := gmark.Count(g, q, gmark.Budget{MaxPairs: 100_000_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("co-authorship closure pairs: %d\n", count)
	}
}
