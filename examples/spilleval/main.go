// Command spilleval is the out-of-core evaluation walkthrough:
// generate an instance straight into a CSR spill (never holding the
// graph in memory), then run the paper's four simulated engines and
// the reference evaluator over the spill — the Section 7 comparison at
// beyond-memory scale. The spill carries persisted active-domain
// bitmaps (manifest format_version 2), so even the recursive query
// builds its epsilon mask without sweeping a single shard file.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"gmark"
)

func main() {
	// The paper's bibliographic schema (Fig. 2). Bump the node count to
	// push the spill past RAM — nothing below materializes the graph.
	const nodes = 50_000
	cfg := gmark.Bib(nodes)

	dir, err := os.MkdirTemp("", "gmark-spilleval-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stream the generation pipeline into the incremental spill sink:
	// edges are routed to per-(predicate, direction, node-range) runs
	// under a fixed buffer budget, then merged one range at a time, so
	// peak writer memory is bounded regardless of instance size.
	sink, err := gmark.NewGraphCSRSpillSink(dir, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	n, err := gmark.EmitGraph(cfg, gmark.GenOptions{Seed: 42}, sink)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spilled %d edges to %s\n", n, dir)

	// Open the spill as an evaluation source: a bounded LRU cache of
	// shard files (64 MiB here) is the only resident state.
	src, err := gmark.OpenGraphSpill(dir, 64<<20)
	if err != nil {
		log.Fatal(err)
	}

	// One non-recursive join and one recursive closure, the shapes of
	// the paper's engine study (Table 4).
	queries := []struct{ label, expr string }{
		{"co-authorship join", "authors-.authors"},
		{"conference-chain closure", "(heldIn-.heldIn)*"},
	}
	for _, qc := range queries {
		expr, err := gmark.ParsePathExpr(qc.expr)
		if err != nil {
			log.Fatal(err)
		}
		q := &gmark.Query{Rules: []gmark.Rule{{
			Head: []gmark.Var{0, 1},
			Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
		}}}

		ref, err := gmark.CountOverSpill(src, q, gmark.Budget{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s  %s\n  reference count: %d\n", qc.label, qc.expr, ref)

		// Engine G's recursive counts follow its documented openCypher
		// rewriting, so on the closure query it legitimately differs.
		for _, res := range gmark.CompareEnginesOverSpill(src, q, gmark.Budget{}) {
			if res.Err != nil {
				fmt.Printf("  engine %s: failed: %v\n", res.Engine, res.Err)
				continue
			}
			fmt.Printf("  engine %s: count %d in %v\n", res.Engine, res.Count, res.Elapsed.Round(10*time.Microsecond))
		}
	}

	st := src.CacheStats()
	fmt.Printf("\nshard cache: %d loads, %d hits, %d evictions, %d domain-rebuild reads, %d bytes resident\n",
		st.Loads, st.Hits, st.Evictions, st.DomainRebuilds, st.BytesUsed)
}
