// Command socialnetwork exercises the LSN use case (the gMark
// encoding of the LDBC Social Network Benchmark schema): it generates
// an instance, builds a mixed workload including a recursive
// friendship-closure query, translates one query into all four
// concrete syntaxes, and races the four simulated engines on the
// workload — a miniature of the paper's Section 7 study.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"gmark"
)

func main() {
	const n = 3000
	cfg := gmark.LSN(n)
	g, err := gmark.GenerateGraph(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LSN instance: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// A selectivity-controlled workload: two queries per class.
	wl, err := gmark.Workload("con", cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := gmark.NewWorkloadGenerator(wl)
	if err != nil {
		log.Fatal(err)
	}
	var queries []*gmark.Query
	for _, class := range []gmark.SelectivityClass{gmark.Constant, gmark.Linear, gmark.Quadratic} {
		for i := 0; i < 2; i++ {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				log.Fatal(err)
			}
			queries = append(queries, q)
		}
	}

	// Plus the classic recursive chokepoint: the knows-closure.
	expr, err := gmark.ParsePathExpr("(knows)*")
	if err != nil {
		log.Fatal(err)
	}
	closure := &gmark.Query{
		Rules: []gmark.Rule{{
			Head: []gmark.Var{0, 1},
			Body: []gmark.Conjunct{{Src: 0, Dst: 1, Expr: expr}},
		}},
	}
	queries = append(queries, closure)

	// Show the four concrete syntaxes for the first query.
	fmt.Printf("\nquery: %s\n", queries[0])
	for _, syntax := range []gmark.Syntax{gmark.SPARQL, gmark.OpenCypher, gmark.PostgreSQL, gmark.Datalog} {
		text, err := gmark.TranslateCount(syntax, queries[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s (count form) ---\n%s", syntax, text)
	}

	// Engine comparison with the paper's budget discipline.
	budget := gmark.Budget{MaxPairs: 20_000_000, Timeout: 20 * time.Second}
	fmt.Printf("\n%-44s", "query")
	for _, eng := range gmark.Engines() {
		fmt.Printf(" %14s", eng.Name())
	}
	fmt.Println()
	for _, q := range queries {
		label := q.Rules[0].String()
		if len(label) > 42 {
			label = label[:39] + "..."
		}
		fmt.Printf("%-44s", label)
		for _, eng := range gmark.Engines() {
			start := time.Now()
			count, err := eng.Evaluate(g, q, budget)
			elapsed := time.Since(start).Round(time.Microsecond)
			switch {
			case errors.Is(err, gmark.ErrBudget):
				fmt.Printf(" %14s", "budget!")
			case err != nil:
				fmt.Printf(" %14s", "error")
			default:
				fmt.Printf(" %8d/%s", count, compact(elapsed))
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(counts differ for engine G on recursive queries: openCypher restriction)")
}

func compact(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}
